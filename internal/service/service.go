// Package service implements the long-running SPP minimization HTTP
// service behind cmd/sppserve: a JSON API over the core pipeline with a
// canonical-function result cache (internal/fcache), a bounded
// admission gate, per-request deadlines plumbed as context into the
// engines, and an observability endpoint serving the spp-stats/v1
// reports of recent runs.
//
// Endpoints:
//
//	POST /v1/minimize  — minimize one function, or a batch via the
//	                     "requests" array; responses carry the SPP form,
//	                     its metrics, cache status and elapsed time.
//	GET  /healthz      — liveness plus the draining flag.
//	GET  /statsz       — service counters and the spp-stats-run/v1
//	                     report of the last N cold runs.
//
// Two requests whose functions differ only by an input-variable
// permutation or by DC-set spelling hit the same cache entry: the
// function is canonicalized (fcache.CanonicalizeCtx, under the request
// deadline) before the key lookup, and the cached canonical-space form
// is mapped back through the inverse permutation on the way out.
package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/bench"
	"repro/internal/bfunc"
	"repro/internal/bitvec"
	"repro/internal/core"
	"repro/internal/fcache"
	"repro/internal/harness"
	"repro/internal/pcube"
	"repro/internal/stats"
)

// Config tunes the server. The zero value gets sensible defaults from
// New.
type Config struct {
	// Core bounds each minimization (budgets, worker counts), shared
	// with the table harness so sppserve and spptables read the same
	// flags.
	Core harness.Config
	// MaxConcurrent is the admission-gate width: how many requests (or
	// batches) may occupy the pipeline at once. Default 2.
	MaxConcurrent int
	// CacheSize is the canonical-function LRU capacity. Default 256.
	CacheSize int
	// DefaultTimeout applies to requests that set no timeout_ms.
	// Default 30s.
	DefaultTimeout time.Duration
	// MaxTimeout caps request-supplied timeouts. Default 2m.
	MaxTimeout time.Duration
	// HistorySize is how many recent cold-run reports /statsz returns.
	// Default 32.
	HistorySize int
	// MaxBodyBytes caps the /v1/minimize request body; oversized bodies
	// get 413. Default 8 MiB.
	MaxBodyBytes int64
	// MaxBatch caps the number of requests in one batch envelope.
	// Default 64.
	MaxBatch int
}

// Request is one minimization job. Exactly one function source must be
// set: explicit minterms (N+On, optional Dc), a named built-in
// benchmark (Bench, optional Output), or inline PLA text (PLA, optional
// Output).
type Request struct {
	N  int      `json:"n,omitempty"`
	On []uint64 `json:"on,omitempty"`
	Dc []uint64 `json:"dc,omitempty"`

	Bench  string `json:"bench,omitempty"`
	PLA    string `json:"pla,omitempty"`
	Output int    `json:"output,omitempty"`

	// Algorithm selects the engine: "exact" (default), "naive", or
	// "sppk" (the SPP_k heuristic, degree K).
	Algorithm string `json:"algorithm,omitempty"`
	K         int    `json:"k,omitempty"`

	ExactCover bool `json:"exact_cover,omitempty"`
	FactorCost bool `json:"factor_cost,omitempty"`

	// TimeoutMS bounds this request's wall clock, queue wait included;
	// 0 means the server default. Capped at Config.MaxTimeout.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// NoCache bypasses the result cache (still populates it).
	NoCache bool `json:"no_cache,omitempty"`
	// Stats embeds this run's spp-stats/v1 report in the response.
	Stats bool `json:"stats,omitempty"`
}

// envelope is the /v1/minimize body: either a bare Request or a batch.
type envelope struct {
	Request
	Requests []Request `json:"requests,omitempty"`
}

// Response is the result of one Request.
type Response struct {
	Form         string        `json:"form,omitempty"`
	Literals     int           `json:"literals"`
	NumTerms     int           `json:"num_terms"`
	EPPP         int           `json:"eppp,omitempty"`
	CoverOptimal bool          `json:"cover_optimal"`
	Cached       bool          `json:"cached"`
	Key          string        `json:"key,omitempty"`
	ElapsedNS    int64         `json:"elapsed_ns"`
	Stats        *stats.Report `json:"stats,omitempty"`
	Error        string        `json:"error,omitempty"`

	status int // HTTP status for single-request responses
}

// batchResponse wraps the per-item results of a batch request. Errors
// that fail the batch as a whole (queue-wait timeout, oversized batch)
// are reported in the top-level Error with an empty Results, so batch
// clients always get the {"results": ...} shape back. (Errors raised
// before the body is parsed — draining, malformed JSON, oversized body
// — cannot know the request shape and use the single-response
// envelope, whose top-level "error" field matches this one.)
type batchResponse struct {
	Results []Response `json:"results"`
	Error   string     `json:"error,omitempty"`
}

// Statsz is the /statsz payload: service counters plus the recent-run
// report ring (docs/stats-schema.md documents the run schema).
type Statsz struct {
	Served      int64            `json:"served"`
	CacheHits   int64            `json:"cache_hits"`
	CacheMisses int64            `json:"cache_misses"`
	Errors      int64            `json:"errors"`
	InFlight    int              `json:"in_flight"`
	Draining    bool             `json:"draining"`
	Runs        *stats.RunReport `json:"runs"`
}

// cacheEntry is a canonical-space result. canon is kept for an Equal
// check on hit, so even a SHA-256 collision cannot serve a wrong form.
type cacheEntry struct {
	canon        *bfunc.Func
	form         core.Form
	eppp         int
	coverOptimal bool
}

// Server is the minimization service. Create with New; expose with
// Handler.
type Server struct {
	cfg   Config
	cache *fcache.Cache[cacheEntry]
	slots chan struct{}

	served, errors atomic.Int64
	draining       atomic.Bool

	mu      sync.Mutex
	history []*stats.Report // ring, oldest first
	runSeq  int64

	// testHookAfterAcquire, when set, runs after a request takes its
	// admission slot and before minimization — tests use it to hold
	// slots open deterministically.
	testHookAfterAcquire func(ctx context.Context)
}

// New builds a server, applying defaults for zero config fields.
func New(cfg Config) *Server {
	if cfg.MaxConcurrent <= 0 {
		cfg.MaxConcurrent = 2
	}
	if cfg.CacheSize <= 0 {
		cfg.CacheSize = 256
	}
	if cfg.DefaultTimeout <= 0 {
		cfg.DefaultTimeout = 30 * time.Second
	}
	if cfg.MaxTimeout <= 0 {
		cfg.MaxTimeout = 2 * time.Minute
	}
	if cfg.HistorySize <= 0 {
		cfg.HistorySize = 32
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 8 << 20
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = 64
	}
	if cfg.Core.PerOutput == 0 && cfg.Core.MaxCandidates == 0 {
		cfg.Core = harness.DefaultConfig()
	}
	return &Server{
		cfg:   cfg,
		cache: fcache.New[cacheEntry](cfg.CacheSize),
		slots: make(chan struct{}, cfg.MaxConcurrent),
	}
}

// Handler returns the HTTP routes.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/minimize", s.handleMinimize)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/statsz", s.handleStatsz)
	return mux
}

// SetDraining flips the draining flag: while set, new minimize
// requests are refused with 503 so http.Server.Shutdown can drain the
// in-flight ones. Reported by /healthz and /statsz.
func (s *Server) SetDraining(d bool) { s.draining.Store(d) }

// FinalReport snapshots the run history for the shutdown flush.
func (s *Server) FinalReport() *stats.RunReport {
	s.mu.Lock()
	defer s.mu.Unlock()
	return stats.NewRunReport(s.history...)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status":   "ok",
		"draining": s.draining.Load(),
	})
}

func (s *Server) handleStatsz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	hits, misses := s.cache.Stats()
	s.mu.Lock()
	runs := stats.NewRunReport(s.history...)
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, Statsz{
		Served:      s.served.Load(),
		CacheHits:   int64(hits),
		CacheMisses: int64(misses),
		Errors:      s.errors.Load(),
		InFlight:    len(s.slots),
		Draining:    s.draining.Load(),
		Runs:        runs,
	})
}

func (s *Server) handleMinimize(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, Response{Error: "server draining"})
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	var env envelope
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&env); err != nil {
		status := http.StatusBadRequest
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			status = http.StatusRequestEntityTooLarge
		}
		writeJSON(w, status, Response{Error: "bad request: " + err.Error()})
		return
	}
	batch := env.Requests != nil
	reqs := env.Requests
	if !batch {
		reqs = []Request{env.Request}
	}
	// Whole-batch failures from here on keep the batch response shape.
	batchFail := func(status int, msg string) {
		if batch {
			writeJSON(w, status, batchResponse{Results: []Response{}, Error: msg})
		} else {
			writeJSON(w, status, Response{Error: msg})
		}
	}
	if len(reqs) == 0 {
		batchFail(http.StatusBadRequest, "empty batch")
		return
	}
	if len(reqs) > s.cfg.MaxBatch {
		batchFail(http.StatusRequestEntityTooLarge,
			fmt.Sprintf("batch of %d exceeds limit %d", len(reqs), s.cfg.MaxBatch))
		return
	}

	// The deadline covers the whole request, queue wait included. A
	// batch shares one deadline (the max of its items' requests) and
	// one admission slot, so intra-batch duplicates hit the cache
	// without re-queueing.
	var timeout time.Duration
	for _, q := range reqs {
		timeout = max(timeout, s.timeout(q))
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()

	select {
	case s.slots <- struct{}{}:
		defer func() { <-s.slots }()
	case <-ctx.Done():
		s.errors.Add(1)
		batchFail(statusFor(ctx.Err()), "queue wait: "+ctx.Err().Error())
		return
	}
	if s.testHookAfterAcquire != nil {
		s.testHookAfterAcquire(ctx)
	}

	results := make([]Response, len(reqs))
	for i, q := range reqs {
		results[i] = s.process(ctx, q)
		if results[i].Error != "" {
			s.errors.Add(1)
		} else {
			s.served.Add(1)
		}
	}
	if batch {
		writeJSON(w, http.StatusOK, batchResponse{Results: results})
		return
	}
	res := results[0]
	status := res.status
	if status == 0 {
		status = http.StatusOK
	}
	writeJSON(w, status, res)
}

func (s *Server) timeout(q Request) time.Duration {
	d := s.cfg.DefaultTimeout
	if q.TimeoutMS > 0 {
		d = time.Duration(q.TimeoutMS) * time.Millisecond
	}
	return min(d, s.cfg.MaxTimeout)
}

// process runs one request: resolve the function, canonicalize, try
// the cache, minimize on miss, permute the form back.
func (s *Server) process(ctx context.Context, q Request) Response {
	start := time.Now()
	fail := func(status int, err error) Response {
		return Response{Error: err.Error(), status: status, ElapsedNS: time.Since(start).Nanoseconds()}
	}
	f, err := resolveFunction(q)
	if err != nil {
		return fail(http.StatusBadRequest, err)
	}
	alg, err := normalizeAlgorithm(q, f.N())
	if err != nil {
		return fail(http.StatusBadRequest, err)
	}

	// Canonicalization honors the request deadline: its class
	// refinement and tie-break costs grow with n and point count, and
	// an admission slot must not outlive its request's budget.
	key, perm, canon, err := fcache.CanonicalizeCtx(ctx, f)
	if err != nil {
		return fail(statusFor(err), err)
	}
	key = key.Derive(s.optionTag(q, alg))
	inv := fcache.InversePerm(perm)

	if !q.NoCache {
		if e, ok := s.cache.Get(key); ok && e.canon.Equal(canon) {
			form := permuteForm(e.form, inv)
			return Response{
				Form:         form.String(),
				Literals:     form.Literals(),
				NumTerms:     form.NumTerms(),
				EPPP:         e.eppp,
				CoverOptimal: e.coverOptimal,
				Cached:       true,
				Key:          key.String(),
				ElapsedNS:    time.Since(start).Nanoseconds(),
			}
		}
	}

	rec := stats.New()
	opts := s.cfg.Core.CoreOptions()
	opts.Ctx = ctx
	opts.Stats = rec
	opts.CoverExact = q.ExactCover
	if q.FactorCost {
		opts.Cost = core.CostFactors
	}

	var res *core.Result
	switch alg.name {
	case "exact":
		res, err = core.MinimizeExact(canon, opts)
	case "naive":
		res, err = core.MinimizeNaive(canon, opts)
	case "sppk":
		res, err = core.Heuristic(canon, alg.k, opts)
	}
	if err != nil {
		return fail(statusFor(err), err)
	}
	// A deadline that expires inside the covering search yields a valid
	// but truncated form (cover.Exact degrades to its incumbent). Serve
	// nothing rather than cache a deadline-shaped result.
	if ctx.Err() != nil {
		return fail(statusFor(ctx.Err()), ctx.Err())
	}

	s.mu.Lock()
	s.runSeq++
	rep := rec.Report(fmt.Sprintf("serve/%d/%s", s.runSeq, alg.name))
	rep.Workers = s.cfg.Core.Workers
	rep.CoverWorkers = s.cfg.Core.CoverWorkers
	s.history = append(s.history, rep)
	if len(s.history) > s.cfg.HistorySize {
		s.history = s.history[1:]
	}
	s.mu.Unlock()

	s.cache.Put(key, cacheEntry{
		canon:        canon,
		form:         res.Form,
		eppp:         res.Build.EPPP,
		coverOptimal: res.CoverOptimal,
	})

	form := permuteForm(res.Form, inv)
	out := Response{
		Form:         form.String(),
		Literals:     form.Literals(),
		NumTerms:     form.NumTerms(),
		EPPP:         res.Build.EPPP,
		CoverOptimal: res.CoverOptimal,
		Key:          key.String(),
		ElapsedNS:    time.Since(start).Nanoseconds(),
	}
	if q.Stats {
		out.Stats = rep
	}
	return out
}

type algorithm struct {
	name string
	k    int
}

func normalizeAlgorithm(q Request, n int) (algorithm, error) {
	switch q.Algorithm {
	case "", "exact":
		return algorithm{name: "exact"}, nil
	case "naive":
		return algorithm{name: "naive"}, nil
	case "sppk", "spp_k":
		if q.K < 0 || q.K > n-1 {
			return algorithm{}, fmt.Errorf("k=%d outside [0, %d]", q.K, n-1)
		}
		return algorithm{name: "sppk", k: q.K}, nil
	default:
		return algorithm{}, fmt.Errorf("unknown algorithm %q", q.Algorithm)
	}
}

// optionTag spells out every option that can change a successful
// result, so different options occupy different cache slots. Budgets
// that abort with an error rather than truncate (PerOutput,
// MaxCandidates) still matter: a function minimized under a larger
// budget is not the same cache entry as one that fit a smaller one
// only because both succeeded. Timeouts and worker counts are absent —
// results are worker-count-independent, and a request that survives
// its deadline is complete.
func (s *Server) optionTag(q Request, alg algorithm) string {
	return fmt.Sprintf("alg=%s;k=%d;xc=%t;fc=%t;cand=%d;nodes=%d",
		alg.name, alg.k, q.ExactCover, q.FactorCost,
		s.cfg.Core.MaxCandidates, s.cfg.Core.CoverMaxNodes)
}

func resolveFunction(q Request) (*bfunc.Func, error) {
	sources := 0
	if len(q.On) > 0 || q.N > 0 {
		sources++
	}
	if q.Bench != "" {
		sources++
	}
	if q.PLA != "" {
		sources++
	}
	if sources != 1 {
		return nil, errors.New("exactly one of (n,on), bench, pla must be set")
	}
	switch {
	case q.Bench != "":
		m, err := bench.Load(q.Bench)
		if err != nil {
			return nil, err
		}
		return pickOutput(m, q.Output)
	case q.PLA != "":
		m, err := bfunc.ParsePLA(strings.NewReader(q.PLA), "request")
		if err != nil {
			return nil, err
		}
		return pickOutput(m, q.Output)
	default:
		if q.N < 1 || q.N > bitvec.MaxVars {
			return nil, fmt.Errorf("n=%d outside [1, %d]", q.N, bitvec.MaxVars)
		}
		if q.N > 30 {
			return nil, fmt.Errorf("n=%d too large for explicit minterms (max 30)", q.N)
		}
		limit := uint64(1) << uint(q.N)
		for _, p := range append(append([]uint64{}, q.On...), q.Dc...) {
			if p >= limit {
				return nil, fmt.Errorf("point %d outside B^%d", p, q.N)
			}
		}
		if len(q.On) == 0 {
			return nil, errors.New("empty ON-set")
		}
		return bfunc.NewDC(q.N, q.On, q.Dc), nil
	}
}

func pickOutput(m *bfunc.Multi, idx int) (*bfunc.Func, error) {
	if idx < 0 || idx >= m.NOutputs() {
		return nil, fmt.Errorf("output %d outside [0, %d)", idx, m.NOutputs())
	}
	return m.Output(idx), nil
}

// permuteForm maps a canonical-space form back to request-variable
// space term by term.
func permuteForm(f core.Form, inv []int) core.Form {
	terms := make([]*pcube.CEX, len(f.Terms))
	for i, t := range f.Terms {
		terms[i] = t.PermuteVars(inv)
	}
	return core.Form{N: f.N, Terms: terms}
}

func statusFor(err error) int {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return 499 // client closed request (nginx convention)
	case errors.Is(err, core.ErrBudget):
		return http.StatusUnprocessableEntity
	default:
		return http.StatusInternalServerError
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
