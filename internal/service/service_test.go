package service

import (
	"context"
	"encoding/json"
	"fmt"
	"math/bits"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/bfunc"
	"repro/internal/bitvec"
	"repro/internal/core"
	"repro/internal/harness"
)

func testConfig() Config {
	return Config{
		Core: harness.Config{
			PerOutput:     10 * time.Second,
			MaxCandidates: 1_000_000,
			Workers:       1,
		},
		MaxConcurrent:  2,
		DefaultTimeout: 10 * time.Second,
		MaxTimeout:     20 * time.Second,
	}
}

func post(t testing.TB, h http.Handler, body string) (int, string) {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, "/v1/minimize", strings.NewReader(body))
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w.Code, w.Body.String()
}

func get(t testing.TB, h http.Handler, path string) (int, string) {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w.Code, w.Body.String()
}

func decodeResp(t testing.TB, body string) Response {
	t.Helper()
	var r Response
	if err := json.Unmarshal([]byte(body), &r); err != nil {
		t.Fatalf("bad response JSON: %v\n%s", err, body)
	}
	return r
}

// oddParity is the n-variable odd-parity ON-set: a one-pseudoproduct
// SPP form, so requests stay fast.
func oddParity(n int) []uint64 {
	var on []uint64
	for p := uint64(0); p < 1<<uint(n); p++ {
		if bits.OnesCount64(p)%2 == 1 {
			on = append(on, p)
		}
	}
	return on
}

func pointsJSON(pts []uint64) string {
	parts := make([]string, len(pts))
	for i, p := range pts {
		parts[i] = fmt.Sprint(p)
	}
	return "[" + strings.Join(parts, ",") + "]"
}

func TestMinimizeSingleAndCacheHit(t *testing.T) {
	s := New(testConfig())
	h := s.Handler()
	body := fmt.Sprintf(`{"n":4,"on":%s}`, pointsJSON(oddParity(4)))

	code, out := post(t, h, body)
	if code != http.StatusOK {
		t.Fatalf("cold: status %d: %s", code, out)
	}
	cold := decodeResp(t, out)
	if cold.Cached {
		t.Error("first request claims cached")
	}
	if cold.Literals != 4 || cold.NumTerms != 1 {
		t.Errorf("odd parity minimized to %d literals / %d terms, want 4/1 (%s)",
			cold.Literals, cold.NumTerms, cold.Form)
	}

	code, out = post(t, h, body)
	if code != http.StatusOK {
		t.Fatalf("warm: status %d: %s", code, out)
	}
	warm := decodeResp(t, out)
	if !warm.Cached {
		t.Error("repeat request missed the cache")
	}
	if warm.Form != cold.Form || warm.Literals != cold.Literals {
		t.Errorf("cached result differs: %q vs %q", warm.Form, cold.Form)
	}
}

// TestMinimizePermutedEquivalentHit: a function that differs from a
// previous request only by an input permutation must hit the cache,
// and the returned form must realize the *permuted* function.
func TestMinimizePermutedEquivalentHit(t *testing.T) {
	s := New(testConfig())
	h := s.Handler()

	// Asymmetric function so the permutation genuinely moves points.
	on := []uint64{0b0001, 0b0011, 0b0111, 0b1111, 0b1000}
	code, out := post(t, h, fmt.Sprintf(`{"n":4,"on":%s}`, pointsJSON(on)))
	if code != http.StatusOK {
		t.Fatalf("cold: status %d: %s", code, out)
	}

	// Permute x0<->x3, x1<->x2 (bit reversal over 4 bits).
	perm := []int{3, 2, 1, 0}
	pon := make([]uint64, len(on))
	for i, p := range on {
		pon[i] = bitvec.PermutePoint(p, 4, perm)
	}
	code, out = post(t, h, fmt.Sprintf(`{"n":4,"on":%s}`, pointsJSON(pon)))
	if code != http.StatusOK {
		t.Fatalf("permuted: status %d: %s", code, out)
	}
	res := decodeResp(t, out)
	if !res.Cached {
		t.Error("permuted-equivalent request missed the cache")
	}
	form, err := core.ParseForm(4, res.Form)
	if err != nil {
		t.Fatalf("returned form does not parse: %v\n%q", err, res.Form)
	}
	if err := form.Verify(bfunc.New(4, pon)); err != nil {
		t.Errorf("cached form does not realize the permuted function: %v", err)
	}
}

func TestMinimizeBatch(t *testing.T) {
	s := New(testConfig())
	h := s.Handler()
	on := pointsJSON(oddParity(3))
	body := fmt.Sprintf(`{"requests":[{"n":3,"on":%s},{"n":3,"on":%s},{"n":3,"on":[1,2]}]}`, on, on)
	code, out := post(t, h, body)
	if code != http.StatusOK {
		t.Fatalf("batch: status %d: %s", code, out)
	}
	var br batchResponse
	if err := json.Unmarshal([]byte(out), &br); err != nil {
		t.Fatalf("bad batch JSON: %v", err)
	}
	if len(br.Results) != 3 {
		t.Fatalf("got %d results, want 3", len(br.Results))
	}
	// Items 0 and 1 are identical; with concurrent batch workers either
	// one may lead the computation, but exactly one computes and the
	// other is served from its flight or the cache.
	if br.Results[0].Cached == br.Results[1].Cached {
		t.Errorf("duplicate items: cached = %v/%v, want exactly one computed",
			br.Results[0].Cached, br.Results[1].Cached)
	}
	if br.Results[0].Form != br.Results[1].Form {
		t.Error("duplicate items disagree on the form")
	}
	if br.Results[2].Cached || br.Results[2].Form == br.Results[0].Form {
		t.Error("distinct batch item wrongly shared a result")
	}
	for i, r := range br.Results {
		if r.Error != "" {
			t.Errorf("item %d errored: %s", i, r.Error)
		}
	}
}

func TestMinimizeDeadline504(t *testing.T) {
	s := New(testConfig())
	// Hold the request until its deadline has passed, then let the
	// pipeline see the expired context.
	s.testHookAfterAcquire = func(ctx context.Context) { <-ctx.Done() }
	h := s.Handler()
	body := fmt.Sprintf(`{"n":4,"on":%s,"timeout_ms":50}`, pointsJSON(oddParity(4)))
	start := time.Now()
	code, out := post(t, h, body)
	if code != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504: %s", code, out)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("deadline honored only after %v", elapsed)
	}
	res := decodeResp(t, out)
	if res.Error == "" {
		t.Error("504 response carries no error message")
	}
}

// TestMinimizeSinglePointManyVars: regression for the fcache tie-break
// budget bypass — {"n":13,"on":[0]} used to enumerate 13! variable
// orderings inside its admission slot, wedging the server. It must now
// answer promptly.
func TestMinimizeSinglePointManyVars(t *testing.T) {
	s := New(testConfig())
	h := s.Handler()
	start := time.Now()
	code, out := post(t, h, `{"n":13,"on":[0]}`)
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, out)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("single-point request took %v; tie-break budget not enforced", elapsed)
	}
	if res := decodeResp(t, out); res.NumTerms != 1 {
		t.Errorf("single-minterm function minimized to %d terms: %s", res.NumTerms, res.Form)
	}
}

func TestMinimizeBodyTooLarge(t *testing.T) {
	cfg := testConfig()
	cfg.MaxBodyBytes = 256
	s := New(cfg)
	h := s.Handler()
	code, out := post(t, h, fmt.Sprintf(`{"n":8,"on":%s}`, pointsJSON(oddParity(8))))
	if code != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d, want 413: %s", code, out)
	}
	if res := decodeResp(t, out); res.Error == "" {
		t.Error("413 response carries no error message")
	}
	// A request that fits still works.
	if code, out := post(t, h, `{"n":3,"on":[1,2,4,7]}`); code != http.StatusOK {
		t.Errorf("small request after 413: status %d: %s", code, out)
	}
}

func TestMinimizeBatchTooLarge(t *testing.T) {
	cfg := testConfig()
	cfg.MaxBatch = 2
	s := New(cfg)
	h := s.Handler()
	item := fmt.Sprintf(`{"n":3,"on":%s}`, pointsJSON(oddParity(3)))
	body := fmt.Sprintf(`{"requests":[%s,%s,%s]}`, item, item, item)
	code, out := post(t, h, body)
	if code != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d, want 413: %s", code, out)
	}
	var br batchResponse
	if err := json.Unmarshal([]byte(out), &br); err != nil {
		t.Fatalf("oversized-batch error is not batch-shaped: %v\n%s", err, out)
	}
	if br.Error == "" || len(br.Results) != 0 {
		t.Errorf("batch error envelope = %+v", br)
	}
	if !strings.Contains(out, `"results"`) {
		t.Errorf("batch error response missing results key: %s", out)
	}
	if code, _ := post(t, h, fmt.Sprintf(`{"requests":[%s,%s]}`, item, item)); code != http.StatusOK {
		t.Errorf("batch at the limit refused: status %d", code)
	}
}

// TestQueueDeadlineDoesNotLeakSlot: a request that times out while
// waiting for admission must not consume a slot — afterwards the full
// gate width is still available.
func TestQueueDeadlineDoesNotLeakSlot(t *testing.T) {
	cfg := testConfig()
	cfg.MaxConcurrent = 1
	s := New(cfg)
	gate := make(chan struct{})
	s.testHookAfterAcquire = func(ctx context.Context) {
		select {
		case <-gate:
		case <-ctx.Done():
		}
	}
	h := s.Handler()
	body := fmt.Sprintf(`{"n":3,"on":%s}`, pointsJSON(oddParity(3)))

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if code, out := post(t, h, body); code != http.StatusOK {
			t.Errorf("slot holder: status %d: %s", code, out)
		}
	}()
	// Wait until the slot is taken.
	for i := 0; len(s.slots) == 0 && i < 1000; i++ {
		time.Sleep(time.Millisecond)
	}
	if len(s.slots) != 1 {
		t.Fatal("slot holder never acquired")
	}

	code, out := post(t, h, fmt.Sprintf(`{"n":3,"on":%s,"timeout_ms":50}`, pointsJSON(oddParity(3))))
	if code != http.StatusGatewayTimeout {
		t.Fatalf("queued request: status %d, want 504: %s", code, out)
	}

	close(gate)
	wg.Wait()
	if code, out := post(t, h, body); code != http.StatusOK {
		t.Fatalf("post-timeout request: status %d (slot leaked?): %s", code, out)
	}
	if got := len(s.slots); got != 0 {
		t.Errorf("slots in use after drain: %d", got)
	}
}

// TestBatchQueueTimeoutShape: batch items that expire before being
// served fail inside the HTTP-200 batch envelope, item by item — a
// deadline is a per-item outcome now, not a whole-batch one. Two
// flavors with one saturated slot: an item identical to the in-flight
// request joins its flight and detaches on its own deadline; a distinct
// item times out waiting for the admission slot.
func TestBatchQueueTimeoutShape(t *testing.T) {
	cfg := testConfig()
	cfg.MaxConcurrent = 1
	s := New(cfg)
	gate := make(chan struct{})
	s.testHookAfterAcquire = func(ctx context.Context) {
		select {
		case <-gate:
		case <-ctx.Done():
		}
	}
	h := s.Handler()
	on := pointsJSON(oddParity(3))

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		post(t, h, fmt.Sprintf(`{"n":3,"on":%s}`, on))
	}()
	defer func() { close(gate); wg.Wait() }()
	for i := 0; len(s.slots) == 0 && i < 1000; i++ {
		time.Sleep(time.Millisecond)
	}
	if len(s.slots) != 1 {
		t.Fatal("slot holder never acquired")
	}

	body := fmt.Sprintf(`{"requests":[{"n":3,"on":%s,"timeout_ms":50},{"n":3,"on":[1,2],"timeout_ms":50}]}`, on)
	code, out := post(t, h, body)
	if code != http.StatusOK {
		t.Fatalf("batch with expiring items: status %d, want 200 envelope: %s", code, out)
	}
	var br batchResponse
	if err := json.Unmarshal([]byte(out), &br); err != nil {
		t.Fatalf("bad batch JSON: %v\n%s", err, out)
	}
	if br.Error != "" || len(br.Results) != 2 {
		t.Fatalf("batch envelope = %+v, want 2 per-item results and no batch error", br)
	}
	if e := br.Results[0].Error; !strings.Contains(e, "coalesced wait") || !strings.Contains(e, "deadline") {
		t.Errorf("duplicate item error = %q, want coalesced-wait deadline", e)
	}
	if e := br.Results[1].Error; !strings.Contains(e, "queue wait") || !strings.Contains(e, "deadline") {
		t.Errorf("distinct item error = %q, want queue-wait deadline", e)
	}
}

// TestGracefulShutdownDrains: Shutdown must refuse new work (via the
// draining flag) yet complete the in-flight request.
func TestGracefulShutdownDrains(t *testing.T) {
	s := New(testConfig())
	gate := make(chan struct{})
	s.testHookAfterAcquire = func(ctx context.Context) {
		select {
		case <-gate:
		case <-ctx.Done():
		}
	}
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	body := fmt.Sprintf(`{"n":3,"on":%s}`, pointsJSON(oddParity(3)))
	type result struct {
		code int
		err  error
	}
	inflight := make(chan result, 1)
	go func() {
		resp, err := http.Post(srv.URL+"/v1/minimize", "application/json", strings.NewReader(body))
		if err != nil {
			inflight <- result{err: err}
			return
		}
		resp.Body.Close()
		inflight <- result{code: resp.StatusCode}
	}()
	for i := 0; len(s.slots) == 0 && i < 1000; i++ {
		time.Sleep(time.Millisecond)
	}

	s.SetDraining(true)
	resp, err := http.Post(srv.URL+"/v1/minimize", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining server accepted new work: status %d", resp.StatusCode)
	}

	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		shutdownDone <- srv.Config.Shutdown(ctx)
	}()
	time.Sleep(20 * time.Millisecond) // let Shutdown begin draining
	close(gate)

	r := <-inflight
	if r.err != nil {
		t.Fatalf("in-flight request failed during shutdown: %v", r.err)
	}
	if r.code != http.StatusOK {
		t.Fatalf("in-flight request got status %d during shutdown", r.code)
	}
	if err := <-shutdownDone; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
}

func TestStatszAndHealthz(t *testing.T) {
	s := New(testConfig())
	h := s.Handler()
	body := fmt.Sprintf(`{"n":4,"on":%s}`, pointsJSON(oddParity(4)))
	post(t, h, body)
	post(t, h, body)

	code, out := get(t, h, "/healthz")
	if code != http.StatusOK || !strings.Contains(out, `"ok"`) {
		t.Fatalf("healthz: %d %s", code, out)
	}

	code, out = get(t, h, "/statsz")
	if code != http.StatusOK {
		t.Fatalf("statsz: status %d", code)
	}
	var st Statsz
	if err := json.Unmarshal([]byte(out), &st); err != nil {
		t.Fatalf("bad statsz JSON: %v", err)
	}
	if st.Served != 2 {
		t.Errorf("served = %d, want 2", st.Served)
	}
	if st.CacheHits != 1 || st.CacheMisses != 1 {
		t.Errorf("cache hits/misses = %d/%d, want 1/1", st.CacheHits, st.CacheMisses)
	}
	if st.Runs == nil || len(st.Runs.Reports) != 1 {
		t.Fatalf("statsz run history: %+v", st.Runs)
	}
	if st.Runs.Schema != "spp-stats-run/v1" {
		t.Errorf("run schema = %q", st.Runs.Schema)
	}
	if rep := st.Runs.Reports[0]; rep.Schema != "spp-stats/v1" || len(rep.Phases) == 0 {
		t.Errorf("cold-run report missing phases: %+v", rep)
	}
}

func TestMinimizeStatsInResponse(t *testing.T) {
	s := New(testConfig())
	h := s.Handler()
	code, out := post(t, h, fmt.Sprintf(`{"n":4,"on":%s,"stats":true}`, pointsJSON(oddParity(4))))
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, out)
	}
	res := decodeResp(t, out)
	if res.Stats == nil || res.Stats.Schema != "spp-stats/v1" {
		t.Fatalf("response stats missing: %+v", res.Stats)
	}
}

func TestMinimizeBadRequests(t *testing.T) {
	s := New(testConfig())
	h := s.Handler()
	cases := []struct {
		name, body string
	}{
		{"unknown field", `{"n":3,"on":[1],"frobnicate":true}`},
		{"two sources", `{"n":3,"on":[1],"bench":"adr4"}`},
		{"no source", `{}`},
		{"empty batch", `{"requests":[]}`},
		{"point out of range", `{"n":3,"on":[8]}`},
		{"empty on", `{"n":3,"on":[]}`},
		{"bad algorithm", `{"n":3,"on":[1],"algorithm":"magic"}`},
		{"k out of range", `{"n":3,"on":[1],"algorithm":"sppk","k":7}`},
		{"unknown bench", `{"bench":"no-such-bench"}`},
		{"bad output", `{"bench":"adr4","output":99}`},
		{"n too large", `{"n":40,"on":[1]}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, out := post(t, h, tc.body)
			if code != http.StatusBadRequest {
				t.Errorf("status %d, want 400: %s", code, out)
			}
		})
	}
	if code, _ := get(t, h, "/v1/minimize"); code != http.StatusMethodNotAllowed {
		t.Errorf("GET minimize: %d, want 405", code)
	}
}

func TestMinimizeBenchSource(t *testing.T) {
	s := New(testConfig())
	h := s.Handler()
	code, out := post(t, h, `{"bench":"adr4","output":0}`)
	if code != http.StatusOK {
		t.Fatalf("bench request: status %d: %s", code, out)
	}
	res := decodeResp(t, out)
	if res.Literals == 0 || res.Form == "" {
		t.Errorf("bench result empty: %+v", res)
	}
}
