package service

// The always-on telemetry capture: a background sampler snapshots the
// /statsz counter families every Config.FTDCInterval into an
// internal/ftdc disk ring (delta-encoded, crash-tolerant), and
// GET /statsz/history replays the ring — including segments written by
// a previous process, so the history survives a kill -9. The live side
// of the same signals (queue-wait p99, per-class backlog) is what the
// admission layer sheds on; the capture exists so an operator can see
// why requests were shed after the fact.

import (
	"errors"
	"net/http"
	"sort"
	"strconv"
	"time"

	"repro/internal/ftdc"
	"repro/internal/jobs"
)

// telemetrySample snapshots every counter family as a sorted
// (names, values) pair — the stable metric schema one ftdc segment
// carries. Names are family-dotted (docs/stats-schema.md).
func (s *Server) telemetrySample() ([]string, []int64) {
	cst := s.cache.Stats()
	s.statsMu.Lock()
	ctr := s.ctr
	s.statsMu.Unlock()
	var jst jobs.Stats
	s.jobMu.Lock()
	if s.jobq != nil {
		jst = s.jobq.Stats()
	}
	s.jobMu.Unlock()

	m := map[string]int64{
		"admission.admitted":          ctr.admitted,
		"admission.queue_wait_p99_ms": s.waits.p99(time.Now()).Milliseconds(),
		"admission.shed_deadline":     ctr.shedDeadline,
		"admission.shed_quota":        ctr.shedQuota,
		"cache.bytes":                 cst.Bytes,
		"cache.evictions":             int64(cst.Evictions),
		"cache.hits":                  ctr.hits,
		"cache.len":                   int64(s.cache.Len()),
		"cache.misses":                ctr.misses,
		"coalesce.detached":           ctr.detached,
		"coalesce.waiters":            ctr.waiters,
		"delta.base_miss":             ctr.deltaBaseMiss,
		"delta.cold":                  ctr.deltaCold,
		"delta.trivial":               ctr.deltaTrivial,
		"delta.warm":                  ctr.deltaWarm,
		"engine.cancelled":            ctr.engineCancelled,
		"engine.races":                ctr.engineRaces,
		"jobs.compactions":            jst.Compactions,
		"jobs.done":                   jst.Done,
		"jobs.failed":                 jst.Failed,
		"jobs.queued":                 int64(jst.Queued),
		"jobs.retried":                jst.Retried,
		"jobs.running":                int64(jst.Running),
		"serve.errors":                ctr.errors,
		"serve.in_flight":             int64(len(s.slots)),
		"serve.served":                ctr.served,
	}
	for _, p := range jobs.Priorities() {
		m["jobs.backlog."+p] = int64(jst.QueuedByPriority[p])
	}
	names := make([]string, 0, len(m))
	for name := range m {
		names = append(names, name)
	}
	sort.Strings(names)
	values := make([]int64, len(names))
	for i, name := range names {
		values[i] = m[name]
	}
	return names, values
}

// StartTelemetry opens the ftdc ring in Config.FTDCDir and starts the
// sampling loop. Idempotent start is an error, like StartJobs.
func (s *Server) StartTelemetry() error {
	if s.cfg.FTDCDir == "" {
		return errors.New("service: telemetry needs Config.FTDCDir")
	}
	s.ftdcMu.Lock()
	defer s.ftdcMu.Unlock()
	if s.ftdcW != nil {
		return errors.New("service: telemetry already started")
	}
	w, err := ftdc.NewWriter(s.cfg.FTDCDir, ftdc.Options{
		SegmentSamples: s.cfg.FTDCSegmentSamples,
		MaxSegments:    s.cfg.FTDCMaxSegments,
	})
	if err != nil {
		return err
	}
	s.ftdcW = w
	s.ftdcStop = make(chan struct{})
	s.ftdcWG.Add(1)
	go s.telemetryLoop(s.ftdcStop)
	return nil
}

func (s *Server) telemetryLoop(stop <-chan struct{}) {
	defer s.ftdcWG.Done()
	t := time.NewTicker(s.cfg.FTDCInterval)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case now := <-t.C:
			names, values := s.telemetrySample()
			// Append errors (disk full, dir removed) drop the sample,
			// not the service: telemetry must never take serving down.
			s.ftdcMu.Lock()
			if s.ftdcW != nil {
				_ = s.ftdcW.Append(now, names, values)
			}
			s.ftdcMu.Unlock()
		}
	}
}

// StopTelemetry stops the sampler and fsyncs the open segment.
func (s *Server) StopTelemetry() {
	s.ftdcMu.Lock()
	stop := s.ftdcStop
	s.ftdcStop = nil
	s.ftdcMu.Unlock()
	if stop == nil {
		return
	}
	close(stop)
	s.ftdcWG.Wait()
	s.ftdcMu.Lock()
	if s.ftdcW != nil {
		_ = s.ftdcW.Close()
		s.ftdcW = nil
	}
	s.ftdcMu.Unlock()
}

// historyResponse is the GET /statsz/history payload: columnar samples
// (metrics names the columns of every v row) replayed from the ftdc
// ring, oldest first.
type historyResponse struct {
	Schema  string          `json:"schema"`
	Metrics []string        `json:"metrics"`
	Samples []historySample `json:"samples"`
	// Truncated reports a crash-cut tail record in the newest segment
	// (dropped; everything before it is intact). Segments is how many
	// ring segments backed the replay.
	Truncated bool `json:"truncated,omitempty"`
	Segments  int  `json:"segments"`
}

type historySample struct {
	// T is the sample time in Unix milliseconds.
	T int64 `json:"t"`
	// V holds one value per entry of Metrics, in order.
	V []int64 `json:"v"`
}

// handleStatszHistory replays the telemetry ring: GET
// /statsz/history?last=N returns the newest N samples (default 600 —
// ten minutes at the default 1s interval). It reads the segment files,
// not the live writer, so it also serves history recorded by a
// previous process after a crash.
func (s *Server) handleStatszHistory(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	if s.cfg.FTDCDir == "" {
		writeJSON(w, http.StatusNotImplemented,
			Response{Error: "telemetry disabled (start sppserve with -ftdc-dir)"})
		return
	}
	last := 600
	if v := r.URL.Query().Get("last"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			writeJSON(w, http.StatusBadRequest, Response{Error: "last must be a positive integer"})
			return
		}
		last = n
	}
	h, err := ftdc.ReadDir(s.cfg.FTDCDir)
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, Response{Error: "telemetry read: " + err.Error()})
		return
	}
	samples := h.Samples
	if len(samples) > last {
		samples = samples[len(samples)-last:]
	}
	// Column set: union of the kept samples' metrics (stable across a
	// deploy; a restart that changes the metric schema just widens the
	// union, with 0 for samples predating a column).
	set := make(map[string]struct{})
	for _, sm := range samples {
		for name := range sm.Values {
			set[name] = struct{}{}
		}
	}
	metrics := make([]string, 0, len(set))
	for name := range set {
		metrics = append(metrics, name)
	}
	sort.Strings(metrics)
	out := historyResponse{
		Schema:    "spp-ftdc-history/v1",
		Metrics:   metrics,
		Samples:   make([]historySample, len(samples)),
		Truncated: h.Truncated,
		Segments:  h.Segments,
	}
	for i, sm := range samples {
		v := make([]int64, len(metrics))
		for j, name := range metrics {
			v[j] = sm.Values[name]
		}
		out.Samples[i] = historySample{T: sm.UnixMS, V: v}
	}
	writeJSON(w, http.StatusOK, out)
}
