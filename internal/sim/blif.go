package sim

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// ReadBLIF parses the BLIF subset internal/netlist emits: a single
// .model with .inputs, .outputs and single-output .names covers (rows
// of 0/1/- followed by the output value 1; the constant-1 cover is a
// bare "1" row). Input ports must be named x<i>.
func ReadBLIF(r io.Reader) (*Circuit, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)

	var c *Circuit
	var name string
	var inputNames, outputNames []string
	var pendingGate *gate
	var pendingInputs []string

	flush := func() error {
		if pendingGate == nil {
			return nil
		}
		// Resolve operand slots now that the names are final.
		for _, in := range pendingInputs {
			pendingGate.args = append(pendingGate.args, c.net(in))
		}
		c.gates = append(c.gates, *pendingGate)
		pendingGate, pendingInputs = nil, nil
		return nil
	}

	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if strings.HasPrefix(line, ".") {
			fields := strings.Fields(line)
			switch fields[0] {
			case ".model":
				if len(fields) > 1 {
					name = fields[1]
				}
			case ".inputs":
				inputNames = append(inputNames, fields[1:]...)
			case ".outputs":
				outputNames = append(outputNames, fields[1:]...)
			case ".names":
				if c == nil {
					n := len(inputNames)
					for i := 0; i < n; i++ {
						if inputNames[i] != fmt.Sprintf("x%d", i) {
							return nil, fmt.Errorf("sim: blif inputs must be x0..x%d", n-1)
						}
					}
					c = newCircuit(name, n)
					c.outputs = outputNames
				}
				if err := flush(); err != nil {
					return nil, err
				}
				if len(fields) < 2 {
					return nil, fmt.Errorf("sim: malformed .names")
				}
				out := c.net(fields[len(fields)-1])
				pendingGate = &gate{op: opCover, out: out}
				pendingInputs = fields[1 : len(fields)-1]
			case ".end":
				if err := flush(); err != nil {
					return nil, err
				}
			default:
				return nil, fmt.Errorf("sim: unsupported blif directive %s", fields[0])
			}
			continue
		}
		// A cover row.
		if pendingGate == nil {
			return nil, fmt.Errorf("sim: cover row outside .names: %q", line)
		}
		fields := strings.Fields(line)
		switch {
		case len(fields) == 1 && len(pendingInputs) == 0 && fields[0] == "1":
			pendingGate.op = opConst1
		case len(fields) == 2 && fields[1] == "1":
			if len(fields[0]) != len(pendingInputs) {
				return nil, fmt.Errorf("sim: cover row %q width %d, want %d",
					line, len(fields[0]), len(pendingInputs))
			}
			row := coverRow{
				care: make([]bool, len(pendingInputs)),
				val:  make([]bool, len(pendingInputs)),
			}
			for i, ch := range fields[0] {
				switch ch {
				case '1':
					row.care[i], row.val[i] = true, true
				case '0':
					row.care[i] = true
				case '-':
					// don't care
				default:
					return nil, fmt.Errorf("sim: bad cover character %q", ch)
				}
			}
			pendingGate.cover = append(pendingGate.cover, row)
		default:
			return nil, fmt.Errorf("sim: unsupported cover row %q (only on-set covers)", line)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if c == nil {
		if len(inputNames) == 0 && len(outputNames) == 0 {
			return nil, fmt.Errorf("sim: no .model content")
		}
		n := len(inputNames)
		c = newCircuit(name, n)
		c.outputs = outputNames
	}
	if err := flush(); err != nil {
		return nil, err
	}
	if err := c.sortTopological(); err != nil {
		return nil, err
	}
	if err := c.validate(); err != nil {
		return nil, err
	}
	return c, nil
}
