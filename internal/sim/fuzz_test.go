package sim

import (
	"strings"
	"testing"
)

// FuzzReadVerilog checks the netlist reader never panics and that
// accepted circuits evaluate without panicking.
func FuzzReadVerilog(f *testing.F) {
	f.Add("module m(x0, y); input x0; output y; assign y = ~x0; endmodule")
	f.Add("module m(x0, x1, y); input x0; input x1; output y; assign y = (x0 ^ x1) & x0 | 1'b0; endmodule")
	f.Add("module m(); endmodule")
	f.Add("garbage")
	f.Fuzz(func(t *testing.T, src string) {
		ckt, err := ReadVerilog(strings.NewReader(src))
		if err != nil {
			return
		}
		if ckt.Inputs > 16 {
			return
		}
		for p := uint64(0); p < 1<<uint(ckt.Inputs) && p < 64; p++ {
			ckt.Eval(p)
		}
	})
}

// FuzzReadBLIF does the same for the BLIF reader.
func FuzzReadBLIF(f *testing.F) {
	f.Add(".model m\n.inputs x0\n.outputs y\n.names x0 y\n0 1\n.end\n")
	f.Add(".model m\n.inputs x0 x1\n.outputs y\n.names x0 x1 y\n1- 1\n-1 1\n.end\n")
	f.Add(".model k\n.inputs x0\n.outputs y\n.names y\n1\n.end\n")
	f.Add("")
	f.Fuzz(func(t *testing.T, src string) {
		ckt, err := ReadBLIF(strings.NewReader(src))
		if err != nil {
			return
		}
		if ckt.Inputs > 16 {
			return
		}
		for p := uint64(0); p < 1<<uint(ckt.Inputs) && p < 64; p++ {
			ckt.Eval(p)
		}
	})
}
