// Package sim provides a small gate-level combinational simulator with
// readers for the two netlist dialects internal/netlist emits:
// structural Verilog assigns (~ ^ & | with parentheses) and BLIF .names
// covers. It closes the synthesis loop — a minimized SPP network is
// exported, read back, and co-simulated against the source function —
// and gives the examples and tools an engine for exercising generated
// hardware the way a testbench would.
package sim

import (
	"fmt"
	"sort"

	"repro/internal/bitvec"
)

// Circuit is a combinational netlist: primary inputs x0..x{n-1},
// internal nets defined by gates in topological order, and named
// outputs.
type Circuit struct {
	Name    string
	Inputs  int
	gates   []gate
	outputs []string       // output port names in declaration order
	netIdx  map[string]int // net name -> value slot
}

// gate computes one net from previously computed nets.
type gate struct {
	op   opKind
	args []int // value slots of the operands
	out  int   // value slot written
	// cover holds the rows of a BLIF .names cover (op opCover): each
	// row is one cube over the args: two bits per arg (care,val) packed
	// in a byte slice for simplicity.
	cover []coverRow
}

type coverRow struct {
	care []bool
	val  []bool
}

type opKind uint8

const (
	opConst0 opKind = iota
	opConst1
	opBuf
	opNot
	opAnd
	opOr
	opXor
	opXnor
	opCover
)

// Outputs lists the circuit's output port names in order.
func (c *Circuit) Outputs() []string { return append([]string(nil), c.outputs...) }

// NumNets returns the number of value slots (inputs + defined nets).
func (c *Circuit) NumNets() int { return len(c.netIdx) }

// NumGates returns the number of gates.
func (c *Circuit) NumGates() int { return len(c.gates) }

// net returns (creating if needed) the slot of a named net.
func (c *Circuit) net(name string) int {
	if i, ok := c.netIdx[name]; ok {
		return i
	}
	i := len(c.netIdx)
	c.netIdx[name] = i
	return i
}

// newCircuit seeds the input nets x0..x{n-1}.
func newCircuit(name string, inputs int) *Circuit {
	c := &Circuit{Name: name, Inputs: inputs, netIdx: map[string]int{}}
	for i := 0; i < inputs; i++ {
		c.net(fmt.Sprintf("x%d", i))
	}
	return c
}

// Eval evaluates the circuit on a packed input point (bitvec packing:
// x0 most significant) and returns the output values in port order.
func (c *Circuit) Eval(p uint64) []bool {
	values := make([]bool, c.NumNets())
	for i := 0; i < c.Inputs; i++ {
		values[i] = bitvec.Bit(p, c.Inputs, i) == 1
	}
	for _, g := range c.gates {
		values[g.out] = g.eval(values)
	}
	out := make([]bool, len(c.outputs))
	for i, name := range c.outputs {
		out[i] = values[c.netIdx[name]]
	}
	return out
}

func (g gate) eval(values []bool) bool {
	switch g.op {
	case opConst0:
		return false
	case opConst1:
		return true
	case opBuf:
		return values[g.args[0]]
	case opNot:
		return !values[g.args[0]]
	case opAnd:
		for _, a := range g.args {
			if !values[a] {
				return false
			}
		}
		return true
	case opOr:
		for _, a := range g.args {
			if values[a] {
				return true
			}
		}
		return false
	case opXor:
		v := false
		for _, a := range g.args {
			v = v != values[a]
		}
		return v
	case opXnor:
		v := true
		for _, a := range g.args {
			v = v != values[a]
		}
		return v
	case opCover:
		for _, row := range g.cover {
			match := true
			for i, a := range g.args {
				if row.care[i] && values[a] != row.val[i] {
					match = false
					break
				}
			}
			if match {
				return true
			}
		}
		return false
	default:
		panic("sim: unknown gate op")
	}
}

// validate checks that every gate reads only previously defined slots
// (inputs or earlier gate outputs) and that outputs are defined.
func (c *Circuit) validate() error {
	defined := make([]bool, c.NumNets())
	for i := 0; i < c.Inputs; i++ {
		defined[i] = true
	}
	for gi, g := range c.gates {
		for _, a := range g.args {
			if !defined[a] {
				return fmt.Errorf("sim: gate %d reads undefined net (combinational loop or missing driver)", gi)
			}
		}
		defined[g.out] = true
	}
	for _, name := range c.outputs {
		slot, ok := c.netIdx[name]
		if !ok || !defined[slot] {
			return fmt.Errorf("sim: output %s has no driver", name)
		}
	}
	return nil
}

// sortTopological reorders gates so every gate follows its operands'
// drivers; it reports an error on combinational cycles. The BLIF and
// Verilog writers emit in order already, but external files may not.
func (c *Circuit) sortTopological() error {
	driver := make(map[int]int, len(c.gates)) // out slot -> gate index
	for gi, g := range c.gates {
		if _, dup := driver[g.out]; dup {
			return fmt.Errorf("sim: net has two drivers")
		}
		driver[g.out] = gi
	}
	const (
		white = 0
		grey  = 1
		black = 2
	)
	state := make([]int, len(c.gates))
	var order []int
	var visit func(gi int) error
	visit = func(gi int) error {
		switch state[gi] {
		case grey:
			return fmt.Errorf("sim: combinational cycle through gate %d", gi)
		case black:
			return nil
		}
		state[gi] = grey
		for _, a := range c.gates[gi].args {
			if d, ok := driver[a]; ok {
				if err := visit(d); err != nil {
					return err
				}
			}
		}
		state[gi] = black
		order = append(order, gi)
		return nil
	}
	// Deterministic traversal order.
	gis := make([]int, len(c.gates))
	for i := range gis {
		gis[i] = i
	}
	sort.Ints(gis)
	for _, gi := range gis {
		if err := visit(gi); err != nil {
			return err
		}
	}
	sorted := make([]gate, len(order))
	for i, gi := range order {
		sorted[i] = c.gates[gi]
	}
	c.gates = sorted
	return nil
}
