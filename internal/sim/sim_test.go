package sim

import (
	"bytes"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/bfunc"
	"repro/internal/core"
	"repro/internal/netlist"
)

func minimizedModule(t *testing.T, n int, fns []*bfunc.Func) *netlist.Module {
	t.Helper()
	m := &netlist.Module{Name: "dut", Inputs: n}
	for i, f := range fns {
		res, err := core.MinimizeExact(f, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		m.Outputs = append(m.Outputs, netlist.Output{Name: fmt.Sprintf("y%d", i), Form: res.Form})
	}
	return m
}

func randomFns(rng *rand.Rand, n, outs int) []*bfunc.Func {
	fns := make([]*bfunc.Func, outs)
	for o := range fns {
		var on []uint64
		for p := uint64(0); p < 1<<uint(n); p++ {
			if rng.Intn(3) == 0 {
				on = append(on, p)
			}
		}
		fns[o] = bfunc.New(n, on)
	}
	return fns
}

// TestCoSimulationVerilog closes the loop: minimize → emit Verilog →
// read back → simulate → compare with the source functions everywhere.
func TestCoSimulationVerilog(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 8; trial++ {
		n := 4 + rng.Intn(2)
		fns := randomFns(rng, n, 3)
		mod := minimizedModule(t, n, fns)
		var buf bytes.Buffer
		if err := netlist.WriteVerilog(&buf, mod); err != nil {
			t.Fatal(err)
		}
		ckt, err := ReadVerilog(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("%v\n%s", err, buf.String())
		}
		if ckt.Inputs != n || len(ckt.Outputs()) != 3 {
			t.Fatalf("shape: %d inputs, outputs %v", ckt.Inputs, ckt.Outputs())
		}
		for p := uint64(0); p < 1<<uint(n); p++ {
			got := ckt.Eval(p)
			for o, f := range fns {
				if got[o] != f.IsOn(p) {
					t.Fatalf("verilog co-sim mismatch out %d at %b\n%s", o, p, buf.String())
				}
			}
		}
	}
}

// TestCoSimulationBLIF does the same through the BLIF path.
func TestCoSimulationBLIF(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 8; trial++ {
		n := 4 + rng.Intn(2)
		fns := randomFns(rng, n, 2)
		mod := minimizedModule(t, n, fns)
		var buf bytes.Buffer
		if err := netlist.WriteBLIF(&buf, mod); err != nil {
			t.Fatal(err)
		}
		ckt, err := ReadBLIF(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("%v\n%s", err, buf.String())
		}
		for p := uint64(0); p < 1<<uint(n); p++ {
			got := ckt.Eval(p)
			for o, f := range fns {
				if got[o] != f.IsOn(p) {
					t.Fatalf("blif co-sim mismatch out %d at %b\n%s", o, p, buf.String())
				}
			}
		}
	}
}

func TestReadVerilogHandwritten(t *testing.T) {
	src := `
// a handwritten module with out-of-order assigns
module adder1(x0, x1, s, c);
  input x0;
  input x1;
  output s;
  output c;
  assign c = x0 & x1;   // carry
  assign s = x0 ^ x1;   // sum
endmodule
`
	ckt, err := ReadVerilog(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	for p := uint64(0); p < 4; p++ {
		got := ckt.Eval(p)
		x0, x1 := p>>1&1 == 1, p&1 == 1
		if got[0] != (x0 != x1) || got[1] != (x0 && x1) {
			t.Fatalf("half adder wrong at %02b: %v", p, got)
		}
	}
}

func TestReadVerilogChainedNets(t *testing.T) {
	// Assigns given in reverse dependency order exercise the
	// topological sort.
	src := `
module chain(x0, x1, y);
  input x0; input x1;
  output y;
  assign y = t2 | x1;
  assign t2 = ~t1;
  assign t1 = x0 & x1;
endmodule
`
	ckt, err := ReadVerilog(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	for p := uint64(0); p < 4; p++ {
		x0, x1 := p>>1&1 == 1, p&1 == 1
		want := !(x0 && x1) || x1
		if ckt.Eval(p)[0] != want {
			t.Fatalf("chain wrong at %02b", p)
		}
	}
}

func TestReadVerilogErrors(t *testing.T) {
	cases := []string{
		"not verilog at all",
		"module m(x0, y); input x0; output y; assign y = ; endmodule",
		"module m(x0, y); input x0; output y; assign y = (x0; endmodule",
		"module m(a, y); input a; output y; assign y = a; endmodule", // inputs must be x<i>
		"module m(x0, y); input x0; output y; endmodule",             // y undriven
		// combinational cycle
		"module m(x0, y); input x0; output y; assign y = z; assign z = y; endmodule",
	}
	for i, src := range cases {
		if _, err := ReadVerilog(strings.NewReader(src)); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestReadBLIFHandwritten(t *testing.T) {
	src := `
.model mux
.inputs x0 x1 x2
.outputs y
.names x0 x1 t0
11 1
.names x0 x2 t1
01 1
.names t0 t1 y
1- 1
-1 1
.end
`
	ckt, err := ReadBLIF(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	// y = x0·x1 + x̄0·x2 (a mux with select x0).
	for p := uint64(0); p < 8; p++ {
		x := func(i int) bool { return p>>uint(2-i)&1 == 1 }
		want := (x(0) && x(1)) || (!x(0) && x(2))
		if ckt.Eval(p)[0] != want {
			t.Fatalf("mux wrong at %03b", p)
		}
	}
}

func TestReadBLIFConstants(t *testing.T) {
	src := ".model k\n.inputs x0\n.outputs y z\n.names y\n1\n.names z\n.end\n"
	ckt, err := ReadBLIF(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	out := ckt.Eval(0)
	if !out[0] || out[1] {
		t.Fatalf("constants wrong: %v", out)
	}
}

func TestReadBLIFErrors(t *testing.T) {
	cases := []string{
		"",
		".model m\n.inputs a\n.outputs y\n.names a y\n1 1\n.end\n", // inputs must be x<i>
		".model m\n.inputs x0\n.outputs y\n11 1\n.end\n",           // row outside .names
		".model m\n.inputs x0\n.outputs y\n.names x0 y\n111 1\n.end\n",
		".model m\n.inputs x0\n.outputs y\n.names x0 y\n1 0\n.end\n", // off-set cover unsupported
		".model m\n.inputs x0\n.outputs y\n.latch a b\n.end\n",
	}
	for i, src := range cases {
		if _, err := ReadBLIF(strings.NewReader(src)); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestCircuitStats(t *testing.T) {
	src := "module m(x0, x1, y); input x0; input x1; output y; assign y = x0 ^ x1; endmodule"
	ckt, err := ReadVerilog(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if ckt.NumGates() < 1 || ckt.NumNets() < 3 {
		t.Fatalf("stats: %d gates, %d nets", ckt.NumGates(), ckt.NumNets())
	}
}
