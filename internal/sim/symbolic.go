package sim

import (
	"fmt"

	"repro/internal/bdd"
)

// ToBDD performs symbolic simulation: every net is evaluated over BDD
// nodes instead of Booleans, yielding one canonical diagram per output.
// Equivalence of two circuits (or of a circuit against a specification
// BDD) then reduces to node identity, with no 2^n enumeration.
func (c *Circuit) ToBDD(m *bdd.Manager) ([]bdd.Node, error) {
	if m.NumVars() != c.Inputs {
		return nil, fmt.Errorf("sim: manager has %d vars, circuit %d inputs", m.NumVars(), c.Inputs)
	}
	values := make([]bdd.Node, c.NumNets())
	for i := 0; i < c.Inputs; i++ {
		values[i] = m.Var(i)
	}
	for _, g := range c.gates {
		v, err := g.evalBDD(m, values)
		if err != nil {
			return nil, err
		}
		values[g.out] = v
	}
	out := make([]bdd.Node, len(c.outputs))
	for i, name := range c.outputs {
		out[i] = values[c.netIdx[name]]
	}
	return out, nil
}

func (g gate) evalBDD(m *bdd.Manager, values []bdd.Node) (bdd.Node, error) {
	switch g.op {
	case opConst0:
		return bdd.Const0, nil
	case opConst1:
		return bdd.Const1, nil
	case opBuf:
		return values[g.args[0]], nil
	case opNot:
		return m.Not(values[g.args[0]]), nil
	case opAnd:
		acc := bdd.Const1
		for _, a := range g.args {
			acc = m.And(acc, values[a])
		}
		return acc, nil
	case opOr:
		acc := bdd.Const0
		for _, a := range g.args {
			acc = m.Or(acc, values[a])
		}
		return acc, nil
	case opXor:
		acc := bdd.Const0
		for _, a := range g.args {
			acc = m.Xor(acc, values[a])
		}
		return acc, nil
	case opXnor:
		acc := bdd.Const1
		for _, a := range g.args {
			acc = m.Xor(acc, values[a])
		}
		return acc, nil
	case opCover:
		acc := bdd.Const0
		for _, row := range g.cover {
			term := bdd.Const1
			for i, a := range g.args {
				if !row.care[i] {
					continue
				}
				lit := values[a]
				if !row.val[i] {
					lit = m.Not(lit)
				}
				term = m.And(term, lit)
			}
			acc = m.Or(acc, term)
		}
		return acc, nil
	default:
		return bdd.Const0, fmt.Errorf("sim: gate op %d not supported symbolically", g.op)
	}
}
