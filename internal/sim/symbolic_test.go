package sim

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/bdd"
	"repro/internal/netlist"
)

func TestSymbolicEquivalenceVerilogVsBLIF(t *testing.T) {
	// The Verilog and BLIF exports of the same design must produce the
	// identical BDD nodes — symbolic equivalence with zero enumeration.
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 6; trial++ {
		n := 4 + rng.Intn(2)
		fns := randomFns(rng, n, 2)
		mod := minimizedModule(t, n, fns)
		var v, bl bytes.Buffer
		if err := netlist.WriteVerilog(&v, mod); err != nil {
			t.Fatal(err)
		}
		if err := netlist.WriteBLIF(&bl, mod); err != nil {
			t.Fatal(err)
		}
		cv, err := ReadVerilog(bytes.NewReader(v.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		cb, err := ReadBLIF(bytes.NewReader(bl.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		m := bdd.New(n)
		nv, err := cv.ToBDD(m)
		if err != nil {
			t.Fatal(err)
		}
		nb, err := cb.ToBDD(m)
		if err != nil {
			t.Fatal(err)
		}
		if len(nv) != len(nb) {
			t.Fatal("output counts differ")
		}
		for o := range nv {
			if nv[o] != nb[o] {
				t.Fatalf("output %d differs symbolically between Verilog and BLIF paths", o)
			}
			// And both match the specification.
			spec := m.FromFunc(fns[o])
			if nv[o] != spec {
				t.Fatalf("output %d differs from its specification", o)
			}
		}
	}
}

func TestSymbolicMatchesConcrete(t *testing.T) {
	src := `
module m(x0, x1, x2, y);
  input x0; input x1; input x2;
  output y;
  assign y = (x0 ^ x1) & ~x2 | x0 & x2;
endmodule
`
	ckt, err := ReadVerilog(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	m := bdd.New(3)
	nodes, err := ckt.ToBDD(m)
	if err != nil {
		t.Fatal(err)
	}
	for p := uint64(0); p < 8; p++ {
		if m.Eval(nodes[0], p) != ckt.Eval(p)[0] {
			t.Fatalf("symbolic and concrete evaluation disagree at %03b", p)
		}
	}
}

func TestToBDDManagerMismatch(t *testing.T) {
	src := "module m(x0, y); input x0; output y; assign y = x0; endmodule"
	ckt, err := ReadVerilog(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ckt.ToBDD(bdd.New(5)); err == nil {
		t.Fatal("expected manager size mismatch error")
	}
}
