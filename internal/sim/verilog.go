package sim

import (
	"bufio"
	"fmt"
	"io"
	"regexp"
	"strings"
)

// ReadVerilog parses the structural-Verilog subset internal/netlist
// emits: a single module with scalar ports, input/output declarations,
// and continuous assigns over ~, ^, &, | and parentheses. Input ports
// must be named x<i>; other identifiers are free.
func ReadVerilog(r io.Reader) (*Circuit, error) {
	src, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	text := stripLineComments(string(src))

	modRe := regexp.MustCompile(`(?s)module\s+(\w+)\s*\(([^)]*)\)\s*;(.*)endmodule`)
	m := modRe.FindStringSubmatch(text)
	if m == nil {
		return nil, fmt.Errorf("sim: no module found")
	}
	name, body := m[1], m[3]

	inputs := map[string]bool{}
	var outputs []string
	declRe := regexp.MustCompile(`(input|output)\s+([^;]+);`)
	for _, d := range declRe.FindAllStringSubmatch(body, -1) {
		for _, id := range strings.Split(d[2], ",") {
			id = strings.TrimSpace(id)
			if id == "" {
				continue
			}
			if d[1] == "input" {
				inputs[id] = true
			} else {
				outputs = append(outputs, id)
			}
		}
	}
	// Inputs must be x0..x{k-1}.
	n := len(inputs)
	for i := 0; i < n; i++ {
		if !inputs[fmt.Sprintf("x%d", i)] {
			return nil, fmt.Errorf("sim: inputs must be named x0..x%d", n-1)
		}
	}

	c := newCircuit(name, n)
	c.outputs = outputs

	assignRe := regexp.MustCompile(`assign\s+(\w+)\s*=\s*([^;]+);`)
	for _, a := range assignRe.FindAllStringSubmatch(body, -1) {
		target := c.net(a[1])
		p := &exprParser{c: c, src: strings.TrimSpace(a[2])}
		slot, err := p.parse()
		if err != nil {
			return nil, fmt.Errorf("sim: assign %s: %v", a[1], err)
		}
		c.gates = append(c.gates, gate{op: opBuf, args: []int{slot}, out: target})
	}
	if err := c.sortTopological(); err != nil {
		return nil, err
	}
	if err := c.validate(); err != nil {
		return nil, err
	}
	return c, nil
}

func stripLineComments(s string) string {
	var sb strings.Builder
	sc := bufio.NewScanner(strings.NewReader(s))
	for sc.Scan() {
		line := sc.Text()
		if i := strings.Index(line, "//"); i >= 0 {
			line = line[:i]
		}
		sb.WriteString(line)
		sb.WriteByte('\n')
	}
	return sb.String()
}

// exprParser builds gates bottom-up from a Verilog expression; each
// subexpression gets a fresh anonymous net. Precedence (loosest first):
// | , ^ , & , unary ~ — matching the emitted dialect (note the emitted
// code always parenthesizes xor inside and).
type exprParser struct {
	c    *Circuit
	src  string
	pos  int
	anon int
}

func (p *exprParser) parse() (int, error) {
	slot, err := p.or()
	if err != nil {
		return 0, err
	}
	p.ws()
	if p.pos != len(p.src) {
		return 0, fmt.Errorf("trailing input %q", p.src[p.pos:])
	}
	return slot, nil
}

func (p *exprParser) ws() {
	for p.pos < len(p.src) && (p.src[p.pos] == ' ' || p.src[p.pos] == '\t' || p.src[p.pos] == '\n') {
		p.pos++
	}
}

func (p *exprParser) peek() byte {
	p.ws()
	if p.pos >= len(p.src) {
		return 0
	}
	return p.src[p.pos]
}

func (p *exprParser) fresh(op opKind, args ...int) int {
	p.anon++
	out := p.c.net(fmt.Sprintf("$%s%d", p.c.Name, len(p.c.gates)))
	p.c.gates = append(p.c.gates, gate{op: op, args: args, out: out})
	return out
}

func (p *exprParser) or() (int, error) {
	slot, err := p.and()
	if err != nil {
		return 0, err
	}
	args := []int{slot}
	for p.peek() == '|' {
		p.pos++
		next, err := p.and()
		if err != nil {
			return 0, err
		}
		args = append(args, next)
	}
	if len(args) == 1 {
		return slot, nil
	}
	return p.fresh(opOr, args...), nil
}

func (p *exprParser) and() (int, error) {
	slot, err := p.xor()
	if err != nil {
		return 0, err
	}
	args := []int{slot}
	for p.peek() == '&' {
		p.pos++
		next, err := p.xor()
		if err != nil {
			return 0, err
		}
		args = append(args, next)
	}
	if len(args) == 1 {
		return slot, nil
	}
	return p.fresh(opAnd, args...), nil
}

func (p *exprParser) xor() (int, error) {
	slot, err := p.unary()
	if err != nil {
		return 0, err
	}
	args := []int{slot}
	for p.peek() == '^' {
		p.pos++
		next, err := p.unary()
		if err != nil {
			return 0, err
		}
		args = append(args, next)
	}
	if len(args) == 1 {
		return slot, nil
	}
	return p.fresh(opXor, args...), nil
}

func (p *exprParser) unary() (int, error) {
	switch ch := p.peek(); {
	case ch == '~':
		p.pos++
		slot, err := p.unary()
		if err != nil {
			return 0, err
		}
		return p.fresh(opNot, slot), nil
	case ch == '(':
		p.pos++
		slot, err := p.or()
		if err != nil {
			return 0, err
		}
		if p.peek() != ')' {
			return 0, fmt.Errorf("missing )")
		}
		p.pos++
		return slot, nil
	case ch == '1' || ch == '0':
		// 1'b0 / 1'b1 literals.
		rest := p.src[p.pos:]
		if strings.HasPrefix(rest, "1'b1") {
			p.pos += 4
			return p.fresh(opConst1), nil
		}
		if strings.HasPrefix(rest, "1'b0") {
			p.pos += 4
			return p.fresh(opConst0), nil
		}
		return 0, fmt.Errorf("bad literal at %q", rest)
	default:
		start := p.pos
		for p.pos < len(p.src) && (isIdent(p.src[p.pos])) {
			p.pos++
		}
		if p.pos == start {
			return 0, fmt.Errorf("unexpected character %q", ch)
		}
		return p.c.net(p.src[start:p.pos]), nil
	}
}

func isIdent(c byte) bool {
	return c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9'
}
