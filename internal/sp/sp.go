// Package sp implements classical two-level (Sum of Products)
// minimization — Quine–McCluskey prime implicants followed by set
// covering — providing the SP side of the paper's Table 1/3 comparisons
// (#PI, #L, #P) and the starting cover of the SPP heuristic.
//
// Cost model: the covering step minimizes the literal count #L (sum of
// care bits over the chosen primes), the paper's primary metric and the
// shared cost of the portfolio engine's "sop" backend (internal/engine,
// docs/forms.md). MethodAuto picks the engine by width: exact
// Quine–McCluskey primes (internal/qm) for narrow functions, the
// ESPRESSO-style EXPAND/IRREDUNDANT/REDUCE loop (internal/espresso)
// where QM's tabulation would explode.
package sp

import (
	"sort"
	"time"

	"repro/internal/bfunc"
	"repro/internal/cover"
	"repro/internal/cube"
	"repro/internal/espresso"
	"repro/internal/qm"
)

// Method selects the two-level engine.
type Method int

const (
	// MethodAuto picks Quine–McCluskey for narrow inputs and the
	// ESPRESSO-style heuristic for wide ones (n > AutoQMLimit).
	MethodAuto Method = iota
	// MethodQM generates all prime implicants and covers them: exact
	// prime enumeration, the engine behind the paper's #PI column.
	MethodQM
	// MethodEspresso runs the EXPAND/IRREDUNDANT/REDUCE loop: no prime
	// enumeration, scales to wide inputs, literal counts are heuristic.
	MethodEspresso
)

// AutoQMLimit is the input-width threshold above which MethodAuto
// switches from Quine–McCluskey to the ESPRESSO-style heuristic.
const AutoQMLimit = 12

// Options configure SP minimization.
type Options struct {
	// Method selects the engine (default MethodAuto).
	Method Method
	// CoverExact selects branch-and-bound covering instead of greedy
	// (MethodQM path only).
	CoverExact bool
	// CoverMaxNodes bounds the exact covering search (0 = default).
	CoverMaxNodes int64
}

// Result is a minimized SP form with statistics.
type Result struct {
	Form Form
	// NumPrimes is the paper's #PI.
	NumPrimes int
	// Time is the total wall-clock duration.
	Time time.Duration
	// CoverOptimal reports whether the covering was proven minimum.
	CoverOptimal bool
}

// Form is a chosen sum of products.
type Form struct {
	N     int
	Cubes []cube.Cube
}

// Literals is the paper's #L for SP forms.
func (f Form) Literals() int {
	total := 0
	for _, c := range f.Cubes {
		total += c.Literals()
	}
	return total
}

// NumTerms is the paper's #P.
func (f Form) NumTerms() int { return len(f.Cubes) }

// Eval reports the form's value on p.
func (f Form) Eval(p uint64) bool {
	for _, c := range f.Cubes {
		if c.Contains(p) {
			return true
		}
	}
	return false
}

// Minimize computes a minimal (or heuristic upper bound) SP cover of f
// with literal-count cost, dispatching on Options.Method.
func Minimize(f *bfunc.Func, opts Options) *Result {
	method := opts.Method
	if method == MethodAuto {
		if f.N() > AutoQMLimit {
			method = MethodEspresso
		} else {
			method = MethodQM
		}
	}
	if method == MethodEspresso {
		return minimizeEspresso(f)
	}
	start := time.Now()
	primes := qm.Primes(f)
	res := &Result{Form: Form{N: f.N()}, NumPrimes: len(primes)}
	if f.OnCount() == 0 {
		res.CoverOptimal = true
		res.Time = time.Since(start)
		return res
	}
	if f.IsConstantOne() {
		res.Form.Cubes = []cube.Cube{{}}
		res.CoverOptimal = true
		res.Time = time.Since(start)
		return res
	}

	on := f.On()
	rowOf := make(map[uint64]int, len(on))
	for i, p := range on {
		rowOf[p] = i
	}
	in := &cover.Instance{NRows: len(on)}
	var cols []cube.Cube
	for _, pi := range primes {
		var rows []int
		for _, p := range pi.Points(f.N()) {
			if r, ok := rowOf[p]; ok {
				rows = append(rows, r)
			}
		}
		if len(rows) == 0 {
			continue
		}
		sort.Ints(rows)
		in.Cols = append(in.Cols, cover.Column{Cost: pi.Literals(), Rows: rows})
		cols = append(cols, pi)
	}
	var cres cover.Result
	if opts.CoverExact {
		cres = cover.Exact(in, cover.ExactOptions{MaxNodes: opts.CoverMaxNodes})
	} else {
		cres = cover.Greedy(in)
	}
	for _, j := range cres.Picked {
		res.Form.Cubes = append(res.Form.Cubes, cols[j])
	}
	res.CoverOptimal = cres.Optimal
	res.Time = time.Since(start)
	return res
}

// minimizeEspresso runs the heuristic engine. NumPrimes is reported as
// 0: the ESPRESSO loop never enumerates the prime set.
func minimizeEspresso(f *bfunc.Func) *Result {
	start := time.Now()
	er := espresso.Minimize(f, espresso.Options{})
	return &Result{
		Form: Form{N: f.N(), Cubes: er.Cover},
		Time: time.Since(start),
	}
}
