package sp

import (
	"math/rand"
	"testing"

	"repro/internal/bfunc"
)

func verify(t *testing.T, f *bfunc.Func, form Form) {
	t.Helper()
	for p := uint64(0); p < 1<<uint(f.N()); p++ {
		got := form.Eval(p)
		if f.IsOn(p) && !got {
			t.Fatalf("ON point %b not covered", p)
		}
		if !f.IsCare(p) && got {
			t.Fatalf("OFF point %b wrongly covered", p)
		}
	}
}

func TestMinimizeRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 30; trial++ {
		n := 3 + rng.Intn(3)
		var on, dc []uint64
		for p := uint64(0); p < 1<<uint(n); p++ {
			switch rng.Intn(4) {
			case 0:
				on = append(on, p)
			case 1:
				if trial%2 == 0 {
					dc = append(dc, p)
				}
			}
		}
		f := bfunc.NewDC(n, on, dc)
		res := Minimize(f, Options{})
		verify(t, f, res.Form)
		resX := Minimize(f, Options{CoverExact: true})
		verify(t, f, resX.Form)
		if resX.Form.Literals() > res.Form.Literals() {
			t.Fatalf("exact covering worse than greedy: %d > %d",
				resX.Form.Literals(), res.Form.Literals())
		}
	}
}

func TestMinimizeKnown(t *testing.T) {
	// Majority of 3: minimal SP is x0x1 + x0x2 + x1x2 (6 literals, 3
	// products, 6 primes? no: exactly 3 primes).
	maj := bfunc.FromPredicate(3, func(p uint64) bool {
		c := 0
		for i := 0; i < 3; i++ {
			c += int(p >> uint(i) & 1)
		}
		return c >= 2
	})
	res := Minimize(maj, Options{CoverExact: true})
	if res.NumPrimes != 3 {
		t.Fatalf("majority primes = %d, want 3", res.NumPrimes)
	}
	if res.Form.Literals() != 6 || res.Form.NumTerms() != 3 {
		t.Fatalf("majority SP = %d literals, %d products", res.Form.Literals(), res.Form.NumTerms())
	}
	verify(t, maj, res.Form)
}

func TestMinimizeDegenerate(t *testing.T) {
	empty := bfunc.New(3, nil)
	res := Minimize(empty, Options{})
	if res.Form.NumTerms() != 0 || !res.CoverOptimal {
		t.Fatalf("empty: %+v", res)
	}
	one := bfunc.FromPredicate(2, func(uint64) bool { return true })
	res = Minimize(one, Options{})
	if res.Form.NumTerms() != 1 || res.Form.Literals() != 0 {
		t.Fatalf("constant one: %+v", res.Form)
	}
	verify(t, one, res.Form)
}
