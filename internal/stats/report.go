package stats

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"
)

// Schema identifies the JSON layout of a single-run Report. The
// normative field-by-field description (and the deterministic-vs-sched
// counter contract) lives in docs/stats-schema.md, with the recorder's
// sharding design in DESIGN.md (ablation 10); bump on breaking changes.
const Schema = "spp-stats/v1"

// PhaseTime is one phase's aggregate wall time.
type PhaseTime struct {
	Phase string `json:"phase"`
	// Seconds is total wall time spent in the phase across all its
	// invocations (per-output builds of a multi-output run sum here).
	Seconds float64 `json:"seconds"`
	// Count is the number of timed invocations.
	Count int64 `json:"count"`
}

// LayerSize is one per-degree EPPP layer aggregate.
type LayerSize struct {
	Degree int `json:"degree"`
	// Size is the number of pseudoproducts retained at the degree.
	Size int64 `json:"size"`
	// Groups is the number of structure groups at the degree.
	Groups int64 `json:"groups"`
}

// Report is the machine-readable summary of one run. Counters holds
// the deterministic counters (identical for every worker count on the
// same input); Sched holds the scheduling-dependent ones. Zero-valued
// entries are omitted from both.
type Report struct {
	Schema string `json:"schema"`
	Name   string `json:"name,omitempty"`
	// Workers and CoverWorkers are the resolved pool sizes the run used
	// (informational; they never influence Counters).
	Workers      int              `json:"workers,omitempty"`
	CoverWorkers int              `json:"cover_workers,omitempty"`
	WallSeconds  float64          `json:"wall_seconds"`
	Phases       []PhaseTime      `json:"phases,omitempty"`
	Counters     map[string]int64 `json:"counters,omitempty"`
	Sched        map[string]int64 `json:"sched,omitempty"`
	Layers       []LayerSize      `json:"layers,omitempty"`
}

// Report snapshots the recorder into a serializable Report. WallSeconds
// is the time since the recorder was created. Returns nil on a nil
// recorder.
func (r *Recorder) Report(name string) *Report {
	if r == nil {
		return nil
	}
	rep := &Report{
		Schema:      Schema,
		Name:        name,
		WallSeconds: time.Since(r.start).Seconds(),
	}
	for p := Phase(0); p < numPhases; p++ {
		calls := r.phaseCalls[p].Load()
		if calls == 0 {
			continue
		}
		rep.Phases = append(rep.Phases, PhaseTime{
			Phase:   p.String(),
			Seconds: time.Duration(r.phaseNanos[p].Load()).Seconds(),
			Count:   calls,
		})
	}
	for c := Counter(0); c < numCounters; c++ {
		v := r.counters[c].Load()
		if v == 0 {
			continue
		}
		if c.Deterministic() {
			if rep.Counters == nil {
				rep.Counters = make(map[string]int64)
			}
			rep.Counters[c.String()] = v
		} else {
			if rep.Sched == nil {
				rep.Sched = make(map[string]int64)
			}
			rep.Sched[c.String()] = v
		}
	}
	r.mu.Lock()
	for d := range r.layerSizes {
		if r.layerSizes[d] == 0 && r.layerGroups[d] == 0 {
			continue
		}
		rep.Layers = append(rep.Layers, LayerSize{
			Degree: d,
			Size:   r.layerSizes[d],
			Groups: r.layerGroups[d],
		})
	}
	r.mu.Unlock()
	return rep
}

// PhaseSeconds returns the summed wall time of all phases — the
// instrumented fraction of WallSeconds.
func (rep *Report) PhaseSeconds() float64 {
	var s float64
	for _, p := range rep.Phases {
		s += p.Seconds
	}
	return s
}

// WriteJSON writes the report as indented JSON.
func (rep *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// Summary writes a human-readable phase/counter table, the `-v` view.
func (rep *Report) Summary(w io.Writer) {
	if rep.Name != "" {
		fmt.Fprintf(w, "%s:\n", rep.Name)
	}
	fmt.Fprintf(w, "  wall time %.3fs", rep.WallSeconds)
	if len(rep.Phases) > 0 {
		fmt.Fprintf(w, " (%.3fs in %d instrumented phases)", rep.PhaseSeconds(), len(rep.Phases))
	}
	fmt.Fprintln(w)
	for _, p := range rep.Phases {
		fmt.Fprintf(w, "  %-18s %9.3fs  x%d\n", p.Phase, p.Seconds, p.Count)
	}
	writeCounterBlock(w, "counters", rep.Counters)
	writeCounterBlock(w, "sched", rep.Sched)
	if len(rep.Layers) > 0 {
		fmt.Fprintf(w, "  layers (degree:size/groups)")
		for _, l := range rep.Layers {
			fmt.Fprintf(w, " %d:%d/%d", l.Degree, l.Size, l.Groups)
		}
		fmt.Fprintln(w)
	}
}

func writeCounterBlock(w io.Writer, title string, m map[string]int64) {
	if len(m) == 0 {
		return
	}
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	fmt.Fprintf(w, "  %s:\n", title)
	for _, k := range keys {
		fmt.Fprintf(w, "    %-28s %d\n", k, m[k])
	}
}

// RunReport is the multi-report container emitted by cmd/spptables: one
// Report per table row or figure point.
type RunReport struct {
	Schema  string    `json:"schema"`
	Reports []*Report `json:"reports"`
}

// RunSchema identifies the JSON layout of a RunReport; see
// docs/stats-schema.md.
const RunSchema = "spp-stats-run/v1"

// NewRunReport wraps reports (nil entries are dropped).
func NewRunReport(reports ...*Report) *RunReport {
	rr := &RunReport{Schema: RunSchema}
	for _, r := range reports {
		if r != nil {
			rr.Reports = append(rr.Reports, r)
		}
	}
	return rr
}

// WriteJSON writes the run report as indented JSON.
func (rr *RunReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rr)
}
