// Package stats is the pipeline observability layer: a Recorder
// collects per-phase wall times and counters from EPPP construction,
// the heuristic's descendant/ascendant phases and the covering engine.
//
// The layer is zero-overhead when disabled: every probe on a nil
// *Recorder reduces to a nil check (verified by BenchmarkStatsOverhead
// against BenchmarkParallelEPPP), so Options.Stats == nil preserves the
// hot paths exactly. When enabled, counters are aggregated race-safely
// across the worker pools — workers count into per-worker Shards (plain
// int64s, no contention) and merge them into the Recorder's atomics at
// the pool join points, mirroring how the engines themselves merge
// worker-local tries.
//
// Counters come in two classes. Deterministic counters describe the
// algorithms and are byte-identical for every Workers/CoverWorkers
// setting, extending the engines' determinism guarantee to their
// observability; scheduling counters (budget refunds, shard trie nodes,
// parallel branch-and-bound node/prune counts) describe the execution
// and may vary run to run. Report keeps the two classes in separate
// JSON sections so regression gates can diff the deterministic one.
//
// This layer answers "what did one run cost"; the serving layer's
// counter families (internal/service's /statsz) answer "what is the
// service doing", and its telemetry sampler captures those families
// over time into an internal/ftdc disk ring for /statsz/history. The
// split is deliberate: per-run reports stay deterministic and
// diffable, time-series capture stays lossy and bounded.
package stats

import (
	"context"
	"runtime/pprof"
	"sync"
	"sync/atomic"
	"time"
)

// Phase identifies one stage of the minimization pipeline. Phase wall
// times are disjoint by construction (no phase is timed inside
// another), so their sum approximates the pipeline's total runtime.
type Phase int

const (
	// PhaseEPPP is EPPP construction (Algorithm 2, trie or hash-grouped).
	PhaseEPPP Phase = iota
	// PhaseEPPPNaive is the quadratic Luccio–Pagli baseline build.
	PhaseEPPPNaive
	// PhaseSeed is the heuristic's step 1: SP prime implicant seeding.
	PhaseSeed
	// PhaseDescend is the heuristic's descendant phase (Theorem 2).
	PhaseDescend
	// PhaseAscend is the heuristic's ascendant phase (union steps).
	PhaseAscend
	// PhaseCoverColumns is covering-column construction.
	PhaseCoverColumns
	// PhaseCoverReduce is the exact solver's essential/dominance pass.
	PhaseCoverReduce
	// PhaseCoverGreedy is the greedy covering heuristic.
	PhaseCoverGreedy
	// PhaseCoverExact is the branch-and-bound search proper.
	PhaseCoverExact
	// PhaseVerify is post-minimization exhaustive verification.
	PhaseVerify
	// PhaseCoverPatch is the warm-resume cover work outside greedy/exact
	// selection: snapshot patching, pick replay and trivial
	// short-circuits. Disjoint from the other cover phases, so resume
	// profiles split patch vs. greedy vs. B&B time.
	PhaseCoverPatch

	// --- portfolio-engine phases: one per non-SPP backend, so a raced
	// run's report attributes wall time to the backend that spent it.
	// The SPP backend keeps its fine-grained phases above.

	// PhaseEngineSOP is one SP (two-level sum-of-products) backend run.
	PhaseEngineSOP
	// PhaseEngineESOP is one ESOP (fixed-polarity Reed–Muller) backend
	// run.
	PhaseEngineESOP
	// PhaseEngineDSOP is one DSOP (disjoint sum-of-products) backend
	// run.
	PhaseEngineDSOP

	numPhases
)

var phaseNames = [numPhases]string{
	PhaseEPPP:         "eppp",
	PhaseEPPPNaive:    "eppp.naive",
	PhaseSeed:         "heuristic.seed",
	PhaseDescend:      "heuristic.descend",
	PhaseAscend:       "heuristic.ascend",
	PhaseCoverColumns: "cover.columns",
	PhaseCoverReduce:  "cover.reduce",
	PhaseCoverGreedy:  "cover.greedy",
	PhaseCoverExact:   "cover.exact",
	PhaseVerify:       "verify",
	PhaseCoverPatch:   "cover.patch",
	PhaseEngineSOP:    "engine.sop",
	PhaseEngineESOP:   "engine.esop",
	PhaseEngineDSOP:   "engine.dsop",
}

func (p Phase) String() string {
	if p < 0 || p >= numPhases {
		return "unknown"
	}
	return phaseNames[p]
}

// Counter identifies one pipeline counter.
type Counter int

const (
	// --- deterministic counters: identical for every worker count ---

	// CtrCandidates counts pseudoproducts materialized across all
	// degrees during EPPP construction.
	CtrCandidates Counter = iota
	// CtrEPPP counts retained extended prime pseudoproducts.
	CtrEPPP
	// CtrUnions counts Algorithm-1 union attempts.
	CtrUnions
	// CtrFresh counts union successes: distinct pseudoproducts a union
	// or descent step admitted to the next level.
	CtrFresh
	// CtrComparisons counts the naive baseline's structure comparisons.
	CtrComparisons
	// CtrCoverColumns counts covering columns built.
	CtrCoverColumns
	// CtrCoverDCOnly counts candidates dropped for covering only
	// don't-cares.
	CtrCoverDCOnly
	// CtrCoverGray counts candidates whose rows were enumerated by the
	// Gray-code affine walk.
	CtrCoverGray
	// CtrCoverContains counts candidates that fell back to the
	// Contains scan over the ON points.
	CtrCoverContains
	// CtrGreedyPicks counts greedy column selections (before
	// redundancy elimination).
	CtrGreedyPicks
	// CtrGreedyReevals counts lazy-heap re-evaluations: heap tops whose
	// cached new-row count was stale and had to be re-keyed or popped.
	CtrGreedyReevals
	// CtrGreedyRedundant counts picks dropped by redundancy elimination.
	CtrGreedyRedundant
	// CtrReduceEssential counts essential columns forced by the exact
	// solver's preprocessing.
	CtrReduceEssential
	// CtrReduceRowDom counts rows removed by row dominance.
	CtrReduceRowDom
	// CtrReduceColDom counts columns removed by column dominance.
	CtrReduceColDom
	// CtrCoverReplayed counts warm-resume greedy picks served by
	// replaying the previous run's pick trace (no heap work).
	CtrCoverReplayed
	// CtrCoverResolved counts warm-resume greedy picks that re-entered
	// heap selection because the replay check could not certify them.
	CtrCoverResolved
	// CtrCoverDirty counts candidate columns whose covered-ON point
	// lists changed under a resume patch (dropped, grown, or fresh).
	CtrCoverDirty

	// --- scheduling counters: may vary with worker count/timing ---

	// CtrBudgetRefunds counts generation credits refunded at merge
	// points for cross-shard duplicates (always 0 when serial).
	CtrBudgetRefunds
	// CtrTrieNodes counts internal partition-trie nodes observed across
	// levels; worker-local shard tries duplicate path prefixes, so the
	// parallel engines report more nodes than the serial one.
	CtrTrieNodes
	// CtrExactNodes counts branch-and-bound nodes explored.
	CtrExactNodes
	// CtrExactBoundPrunes counts subtrees pruned against the incumbent.
	CtrExactBoundPrunes
	// CtrExactLBPrunes counts subtrees pruned by the independent-rows
	// lower bound.
	CtrExactLBPrunes
	// CtrExactRootBranches counts root branches fanned out by the
	// parallel branch and bound.
	CtrExactRootBranches

	numCounters
)

// firstSchedCounter splits the counter space: counters at or beyond it
// are scheduling-dependent and reported in the Report's "sched" section.
const firstSchedCounter = CtrBudgetRefunds

var counterNames = [numCounters]string{
	CtrCandidates:        "eppp.candidates",
	CtrEPPP:              "eppp.retained",
	CtrUnions:            "eppp.unions",
	CtrFresh:             "eppp.fresh",
	CtrComparisons:       "eppp.naive_comparisons",
	CtrCoverColumns:      "cover.columns_built",
	CtrCoverDCOnly:       "cover.columns_dc_only",
	CtrCoverGray:         "cover.gray_walks",
	CtrCoverContains:     "cover.contains_fallbacks",
	CtrGreedyPicks:       "cover.greedy_picks",
	CtrGreedyReevals:     "cover.greedy_reevals",
	CtrGreedyRedundant:   "cover.greedy_redundant_dropped",
	CtrReduceEssential:   "cover.reduce_essential",
	CtrReduceRowDom:      "cover.reduce_row_dominated",
	CtrReduceColDom:      "cover.reduce_col_dominated",
	CtrCoverReplayed:     "cover.warm_replayed",
	CtrCoverResolved:     "cover.warm_resolved_picks",
	CtrCoverDirty:        "cover.warm_dirty_columns",
	CtrBudgetRefunds:     "budget.refunds",
	CtrTrieNodes:         "eppp.trie_nodes",
	CtrExactNodes:        "cover.exact_nodes",
	CtrExactBoundPrunes:  "cover.exact_bound_prunes",
	CtrExactLBPrunes:     "cover.exact_lb_prunes",
	CtrExactRootBranches: "cover.exact_root_branches",
}

func (c Counter) String() string {
	if c < 0 || c >= numCounters {
		return "unknown"
	}
	return counterNames[c]
}

// Deterministic reports whether the counter's value is independent of
// worker counts and scheduling.
func (c Counter) Deterministic() bool { return c < firstSchedCounter }

// Recorder accumulates one run's observability data. All methods are
// safe for concurrent use and all are no-ops on a nil receiver, so call
// sites need no guards beyond passing the (possibly nil) recorder.
type Recorder struct {
	start  time.Time
	labels bool

	counters   [numCounters]atomic.Int64
	phaseNanos [numPhases]atomic.Int64
	phaseCalls [numPhases]atomic.Int64

	mu          sync.Mutex
	layerSizes  []int64
	layerGroups []int64
}

// New returns an enabled recorder with goroutine labeling off.
func New() *Recorder { return &Recorder{start: time.Now()} }

// NewLabeled returns a recorder that additionally tags worker
// goroutines with their pipeline phase via runtime/pprof labels, so CPU
// profiles decompose by stage (pprof -tagfocus / tag report on
// "spp-phase").
func NewLabeled() *Recorder {
	r := New()
	r.labels = true
	return r
}

// Add adds n to counter c. No-op on a nil recorder.
func (r *Recorder) Add(c Counter, n int64) {
	if r == nil || n == 0 {
		return
	}
	r.counters[c].Add(n)
}

// Get returns the current value of counter c (0 on a nil recorder).
func (r *Recorder) Get(c Counter) int64 {
	if r == nil {
		return 0
	}
	return r.counters[c].Load()
}

var noopStop = func() {}

// Phase starts timing phase p and returns the stop function. The usual
// pattern is
//
//	defer r.Phase(stats.PhaseEPPP)()
//
// On a nil recorder the returned stop is a shared no-op (no allocation,
// no clock read).
func (r *Recorder) Phase(p Phase) func() {
	if r == nil {
		return noopStop
	}
	start := time.Now()
	return func() {
		r.phaseNanos[p].Add(int64(time.Since(start)))
		r.phaseCalls[p].Add(1)
	}
}

// Layer accumulates one per-degree layer observation: size
// pseudoproducts in groups structure groups at the given degree.
// Observations from multiple builds (e.g. per-output runs of a
// multi-output minimization) sum per degree.
func (r *Recorder) Layer(degree, size, groups int) {
	if r == nil || (size == 0 && groups == 0) || degree < 0 {
		return
	}
	r.mu.Lock()
	for degree >= len(r.layerSizes) {
		r.layerSizes = append(r.layerSizes, 0)
		r.layerGroups = append(r.layerGroups, 0)
	}
	r.layerSizes[degree] += int64(size)
	r.layerGroups[degree] += int64(groups)
	r.mu.Unlock()
}

// Do runs fn, tagging the current goroutine with the phase name for CPU
// profiles when the recorder was built with NewLabeled. The engines
// wrap their worker-pool goroutine bodies in Do, so a pprof profile of
// a parallel run attributes worker time to pipeline stages.
func (r *Recorder) Do(p Phase, fn func()) {
	if r == nil || !r.labels {
		fn()
		return
	}
	pprof.Do(context.Background(), pprof.Labels("spp-phase", p.String()),
		func(context.Context) { fn() })
}

// Shard is a worker-local counter block: plain int64s a single worker
// adds to without synchronization, merged into the recorder once at the
// pool's join point. The zero value is ready to use.
type Shard struct {
	counts [numCounters]int64
}

// Add adds n to counter c in the shard. Not safe for concurrent use —
// that is the point.
func (s *Shard) Add(c Counter, n int64) { s.counts[c] += n }

// Merge folds a worker shard into the recorder. No-op on a nil
// recorder (the shard's cheap local counting is then simply discarded).
func (r *Recorder) Merge(s *Shard) {
	if r == nil {
		return
	}
	for c, n := range s.counts {
		if n != 0 {
			r.counters[c].Add(n)
		}
	}
}
