package stats

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

// A nil recorder must accept every probe and produce nothing.
func TestNilRecorderSafe(t *testing.T) {
	var r *Recorder
	r.Add(CtrCandidates, 7)
	r.Phase(PhaseEPPP)()
	r.Layer(2, 10, 3)
	ran := false
	r.Do(PhaseCoverExact, func() { ran = true })
	if !ran {
		t.Fatal("Do did not run fn on nil recorder")
	}
	var s Shard
	s.Add(CtrUnions, 3)
	r.Merge(&s)
	if got := r.Get(CtrUnions); got != 0 {
		t.Fatalf("nil recorder Get = %d, want 0", got)
	}
	if rep := r.Report("x"); rep != nil {
		t.Fatalf("nil recorder Report = %+v, want nil", rep)
	}
}

func TestAddGetMerge(t *testing.T) {
	r := New()
	r.Add(CtrCandidates, 5)
	r.Add(CtrCandidates, 2)
	var s1, s2 Shard
	s1.Add(CtrCandidates, 3)
	s1.Add(CtrUnions, 10)
	s2.Add(CtrUnions, 1)
	r.Merge(&s1)
	r.Merge(&s2)
	if got := r.Get(CtrCandidates); got != 10 {
		t.Errorf("CtrCandidates = %d, want 10", got)
	}
	if got := r.Get(CtrUnions); got != 11 {
		t.Errorf("CtrUnions = %d, want 11", got)
	}
}

// Concurrent Add/Merge/Layer from many goroutines must neither race
// (run under -race in check-race) nor lose updates.
func TestConcurrentAccumulation(t *testing.T) {
	r := New()
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var s Shard
			for i := 0; i < per; i++ {
				r.Add(CtrCandidates, 1)
				s.Add(CtrUnions, 1)
				r.Layer(3, 1, 0)
			}
			r.Merge(&s)
		}()
	}
	wg.Wait()
	if got := r.Get(CtrCandidates); got != workers*per {
		t.Errorf("CtrCandidates = %d, want %d", got, workers*per)
	}
	if got := r.Get(CtrUnions); got != workers*per {
		t.Errorf("CtrUnions = %d, want %d", got, workers*per)
	}
	rep := r.Report("")
	if len(rep.Layers) != 1 || rep.Layers[0].Degree != 3 || rep.Layers[0].Size != workers*per {
		t.Errorf("Layers = %+v, want one degree-3 entry of size %d", rep.Layers, workers*per)
	}
}

func TestPhaseTiming(t *testing.T) {
	r := New()
	stop := r.Phase(PhaseCoverGreedy)
	time.Sleep(2 * time.Millisecond)
	stop()
	r.Phase(PhaseCoverGreedy)()
	rep := r.Report("t")
	if len(rep.Phases) != 1 {
		t.Fatalf("Phases = %+v, want exactly one", rep.Phases)
	}
	p := rep.Phases[0]
	if p.Phase != "cover.greedy" || p.Count != 2 {
		t.Errorf("phase = %+v, want cover.greedy x2", p)
	}
	if p.Seconds <= 0 || p.Seconds > rep.WallSeconds+0.001 {
		t.Errorf("phase seconds %v out of range (wall %v)", p.Seconds, rep.WallSeconds)
	}
	if ps := rep.PhaseSeconds(); ps != p.Seconds {
		t.Errorf("PhaseSeconds = %v, want %v", ps, p.Seconds)
	}
}

// Counter classification drives which JSON section a counter lands in;
// the split is what the determinism tests and CI gates diff.
func TestCounterClassification(t *testing.T) {
	det := []Counter{CtrCandidates, CtrEPPP, CtrUnions, CtrFresh, CtrComparisons,
		CtrCoverColumns, CtrCoverDCOnly, CtrCoverGray, CtrCoverContains,
		CtrGreedyPicks, CtrGreedyReevals, CtrGreedyRedundant,
		CtrReduceEssential, CtrReduceRowDom, CtrReduceColDom,
		CtrCoverReplayed, CtrCoverResolved, CtrCoverDirty}
	sched := []Counter{CtrBudgetRefunds, CtrTrieNodes, CtrExactNodes,
		CtrExactBoundPrunes, CtrExactLBPrunes, CtrExactRootBranches}
	for _, c := range det {
		if !c.Deterministic() {
			t.Errorf("%v classified sched, want deterministic", c)
		}
	}
	for _, c := range sched {
		if c.Deterministic() {
			t.Errorf("%v classified deterministic, want sched", c)
		}
	}
	if len(det)+len(sched) != int(numCounters) {
		t.Errorf("test covers %d counters, package has %d", len(det)+len(sched), numCounters)
	}
	seen := map[string]bool{}
	for c := Counter(0); c < numCounters; c++ {
		name := c.String()
		if name == "" || name == "unknown" || seen[name] {
			t.Errorf("counter %d has bad/duplicate name %q", c, name)
		}
		seen[name] = true
	}
	for p := Phase(0); p < numPhases; p++ {
		if p.String() == "" || p.String() == "unknown" {
			t.Errorf("phase %d has no name", p)
		}
	}
}

func TestReportJSONRoundTrip(t *testing.T) {
	r := New()
	r.Add(CtrCandidates, 42)
	r.Add(CtrExactNodes, 9)
	r.Layer(1, 4, 2)
	r.Phase(PhaseEPPP)()
	rep := r.Report("adr4")
	rep.Workers, rep.CoverWorkers = 4, 2

	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if back.Schema != Schema || back.Name != "adr4" || back.Workers != 4 {
		t.Errorf("round trip lost header: %+v", back)
	}
	if back.Counters["eppp.candidates"] != 42 {
		t.Errorf("Counters = %v, want eppp.candidates=42", back.Counters)
	}
	if back.Sched["cover.exact_nodes"] != 9 {
		t.Errorf("Sched = %v, want cover.exact_nodes=9", back.Sched)
	}
	if _, inDet := back.Counters["cover.exact_nodes"]; inDet {
		t.Error("sched counter leaked into deterministic section")
	}
	if len(back.Layers) != 1 || back.Layers[0] != (LayerSize{Degree: 1, Size: 4, Groups: 2}) {
		t.Errorf("Layers = %+v", back.Layers)
	}
}

func TestZeroEntriesOmitted(t *testing.T) {
	r := New()
	r.Add(CtrUnions, 1)
	rep := r.Report("")
	if len(rep.Counters) != 1 {
		t.Errorf("Counters = %v, want only eppp.unions", rep.Counters)
	}
	if rep.Sched != nil {
		t.Errorf("Sched = %v, want nil", rep.Sched)
	}
	if len(rep.Phases) != 0 {
		t.Errorf("Phases = %v, want empty", rep.Phases)
	}
}

func TestSummary(t *testing.T) {
	r := New()
	r.Add(CtrCandidates, 3)
	r.Add(CtrTrieNodes, 5)
	r.Layer(0, 2, 1)
	r.Phase(PhaseCoverGreedy)()
	var buf bytes.Buffer
	r.Report("demo").Summary(&buf)
	out := buf.String()
	for _, want := range []string{"demo:", "wall time", "cover.greedy",
		"eppp.candidates", "eppp.trie_nodes", "layers", "0:2/1"} {
		if !strings.Contains(out, want) {
			t.Errorf("Summary output missing %q:\n%s", want, out)
		}
	}
}

func TestRunReport(t *testing.T) {
	a := New().Report("a")
	rr := NewRunReport(a, nil, New().Report("b"))
	if len(rr.Reports) != 2 {
		t.Fatalf("Reports = %d, want 2 (nil dropped)", len(rr.Reports))
	}
	var buf bytes.Buffer
	if err := rr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back RunReport
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if back.Schema != RunSchema || len(back.Reports) != 2 {
		t.Errorf("round trip: %+v", back)
	}
}

// Do with labels must still run fn and propagate per-goroutine labels
// without interfering with counters.
func TestLabeledDo(t *testing.T) {
	r := NewLabeled()
	done := make(chan struct{})
	go r.Do(PhaseEPPP, func() {
		r.Add(CtrCandidates, 1)
		close(done)
	})
	<-done
	if got := r.Get(CtrCandidates); got != 1 {
		t.Fatalf("counter after labeled Do = %d, want 1", got)
	}
}
