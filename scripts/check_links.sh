#!/bin/sh
# check_links.sh — the docs gate: every relative markdown link
# ([text](path) where path is not a URL or pure #anchor) in the repo's
# documentation must point at an existing file or directory. Fails
# listing the dead links.
set -eu
cd "$(dirname "$0")/.."

status=0
for md in *.md docs/*.md; do
	[ -f "$md" ] || continue
	base=$(dirname "$md")
	# Pull out link targets: [..](target). Markdown images and inline
	# code are rare enough in this repo that the simple pattern serves.
	for target in $(grep -o '](\([^)]*\))' "$md" | sed 's/^](//; s/)$//'); do
		case "$target" in
		http://* | https://* | mailto:* | \#*) continue ;;
		esac
		path=${target%%#*} # strip anchors
		[ -n "$path" ] || continue
		if [ ! -e "$base/$path" ] && [ ! -e "$path" ]; then
			echo "check-links: $md -> $target (missing)" >&2
			status=1
		fi
	done
done
exit $status
