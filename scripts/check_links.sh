#!/bin/sh
# check_links.sh — the docs gate: every relative markdown link
# ([text](path) where path is not a URL or pure #anchor) in the repo's
# documentation must point at an existing file or directory, and every
# document under docs/ must be linked from at least one other markdown
# file (an orphaned normative doc is one nobody can find). Fails
# listing the dead links and orphans.
set -eu
cd "$(dirname "$0")/.."

status=0
for md in *.md docs/*.md; do
	[ -f "$md" ] || continue
	base=$(dirname "$md")
	# Pull out link targets: [..](target). Markdown images and inline
	# code are rare enough in this repo that the simple pattern serves.
	for target in $(grep -o '](\([^)]*\))' "$md" | sed 's/^](//; s/)$//'); do
		case "$target" in
		http://* | https://* | mailto:* | \#*) continue ;;
		esac
		path=${target%%#*} # strip anchors
		[ -n "$path" ] || continue
		if [ ! -e "$base/$path" ] && [ ! -e "$path" ]; then
			echo "check-links: $md -> $target (missing)" >&2
			status=1
		fi
	done
done

# Orphan gate: each docs/*.md must be referenced by name from some
# other markdown file in the repo.
for doc in docs/*.md; do
	[ -f "$doc" ] || continue
	linked=0
	for md in *.md docs/*.md; do
		[ -f "$md" ] || continue
		[ "$md" = "$doc" ] && continue
		if grep -q "$(basename "$doc")" "$md"; then
			linked=1
			break
		fi
	done
	if [ "$linked" -eq 0 ]; then
		echo "check-links: $doc is not linked from any other document" >&2
		status=1
	fi
done
exit $status
