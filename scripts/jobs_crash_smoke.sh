#!/bin/sh
# jobs_crash_smoke.sh — the kill-and-replay gate for the async job
# tier, run by the CI `jobs-crash-smoke` job and `make jobs-crash-smoke`:
#
#   1. build sppserve and start it with -jobs-dir and -ftdc-dir;
#   2. submit N jobs (distinct functions, mixed priority classes) via
#      POST /v1/jobs, all accepted with 202 + id;
#   3. wait until at least one job is done and the telemetry ring holds
#      at least one sample, then SIGKILL the server mid-drain and
#      mid-capture — no graceful anything;
#   4. restart on the same journal dir and assert the replay invariant:
#      every accepted job reaches a terminal state (here: done), the
#      journal holds exactly one terminal record per job, completed
#      work re-warmed the result cache (statsz jobs_replayed > 0)
#      instead of recomputing, and /statsz/history still replays the
#      first process's telemetry samples from the shared ring;
#   5. SIGTERM the second server and confirm a clean exit.
#
# Stdlib tools only: the JSON assertions use grep/sed on Go's
# field-ordered encoding.
set -eu
cd "$(dirname "$0")/.."

NJOBS=8

workdir=$(mktemp -d)
server_pid=""
cleanup() {
	[ -n "$server_pid" ] && kill -9 "$server_pid" 2>/dev/null || true
	rm -rf "$workdir"
}
trap cleanup EXIT INT TERM

fail() {
	echo "jobs-crash-smoke: FAIL: $*" >&2
	echo "--- server log:" >&2
	cat "$workdir"/server*.err >&2 || true
	exit 1
}

# Extract the (first) value of a scalar JSON field from stdin.
jsonfield() {
	grep -o "\"$1\": *[^,}]*" | head -n1 | sed 's/^[^:]*: *//; s/"//g'
}

# mkbody i — a job body over 9 variables whose ON set is drawn from a
# full-period LCG seeded by i; distinct sizes keep the functions
# P-inequivalent, so every job computes its own cache entry and takes
# real engine time (hundreds of ms) rather than hitting the cache.
mkbody() {
	awk -v i="$1" 'BEGIN{
		size = 110 + 2*i
		printf "{\"priority\":\"%s\",\"n\":9,\"on\":[", \
			(i%3==0 ? "interactive" : i%3==1 ? "batch" : "bulk")
		p = (i*37 + 11) % 512; sep = ""; got = 0
		while (got < size) {
			# a=5 (1 mod 4) with an odd increment: full period mod 2^k.
			p = (p*5 + 2*i + 17) % 512
			if (!(p in seen)) { seen[p]=1; printf "%s%d", sep, p; sep=","; got++ }
		}
		printf "]}"
	}'
}

start_server() { # start_server <logprefix>
	"$workdir/sppserve" -addr 127.0.0.1:0 -jobs-dir "$workdir/jobs" -job-workers 2 \
		-ftdc-dir "$workdir/ftdc" -ftdc-interval 100ms \
		>"$workdir/$1.out" 2>"$workdir/$1.err" &
	server_pid=$!
	addr=""
	for _ in $(seq 1 50); do
		addr=$(sed -n 's/^sppserve: listening on //p' "$workdir/$1.out")
		[ -n "$addr" ] && break
		kill -0 "$server_pid" 2>/dev/null || fail "server exited at startup"
		sleep 0.1
	done
	[ -n "$addr" ] || fail "server never reported its address"
}

echo "jobs-crash-smoke: building"
go build -o "$workdir/sppserve" ./cmd/sppserve

start_server server1
echo "jobs-crash-smoke: up at $addr"

echo "jobs-crash-smoke: submitting $NJOBS jobs"
ids=""
i=0
while [ "$i" -lt "$NJOBS" ]; do
	mkbody "$i" >"$workdir/job$i.json"
	code=$(curl -sS -o "$workdir/accept$i.json" -w '%{http_code}' \
		-d @"$workdir/job$i.json" "http://$addr/v1/jobs") || fail "submit job $i"
	[ "$code" = "202" ] || fail "job $i: status $code, want 202"
	id=$(jsonfield id <"$workdir/accept$i.json")
	[ -n "$id" ] || fail "job $i: no id in $(cat "$workdir/accept$i.json")"
	ids="$ids $id"
	i=$((i + 1))
done

# Let the drain start: at least one job must complete so the replay has
# something to warm the cache from.
done_before=0
for _ in $(seq 1 300); do
	done_before=$(curl -sS "http://$addr/statsz" | jsonfield jobs_done) || done_before=0
	[ "${done_before:-0}" -ge 1 ] && break
	sleep 0.1
done
[ "${done_before:-0}" -ge 1 ] || fail "no job completed within 30s"

# The telemetry ring must hold flushed samples before the kill so the
# restart has history to replay.
hist_before=0
for _ in $(seq 1 100); do
	hist_before=$(curl -sS "http://$addr/statsz/history" | grep -o '"t":' | wc -l) || hist_before=0
	[ "${hist_before:-0}" -ge 1 ] && break
	sleep 0.1
done
[ "${hist_before:-0}" -ge 1 ] || fail "no telemetry sample captured within 10s"
echo "jobs-crash-smoke: $done_before done, $hist_before telemetry samples, killing server with SIGKILL"

kill -9 "$server_pid"
wait "$server_pid" 2>/dev/null || true
server_pid=""

echo "jobs-crash-smoke: restarting on the same journal"
start_server server2
replay_line=$(sed -n 's/^sppserve: jobs enabled //p' "$workdir/server2.out")
echo "jobs-crash-smoke: $replay_line"

echo "jobs-crash-smoke: waiting for every accepted job to go terminal"
for id in $ids; do
	state=""
	for _ in $(seq 1 120); do
		curl -sS "http://$addr/v1/jobs/$id?wait_ms=1000" >"$workdir/poll.json" ||
			fail "poll $id"
		state=$(jsonfield state <"$workdir/poll.json")
		[ "$state" = "done" ] || [ "$state" = "failed" ] && break
	done
	# These jobs are all valid, so terminal must mean done — a failed
	# job here is lost or mangled work.
	[ "$state" = "done" ] || fail "job $id ended as '$state', want done"
done

curl -sS "http://$addr/statsz" >"$workdir/statsz.json" || fail "statsz"
replayed=$(jsonfield jobs_replayed <"$workdir/statsz.json")
jdone=$(jsonfield jobs_done <"$workdir/statsz.json")
[ "${replayed:-0}" -ge 1 ] || fail "jobs_replayed = $replayed, want >= 1 (replay did not warm the cache)"
[ "$jdone" = "$NJOBS" ] || fail "jobs_done = $jdone, want $NJOBS"

# The history endpoint reads the segment files, not the live writer, so
# the samples the first process flushed must still replay after its
# kill -9 (a crash-cut tail record is dropped, not an error).
hist_after=$(curl -sS "http://$addr/statsz/history" | grep -o '"t":' | wc -l) ||
	fail "statsz/history after restart"
[ "${hist_after:-0}" -ge "$hist_before" ] ||
	fail "telemetry history lost samples across kill -9: $hist_after < $hist_before"

# Exactly-once: across the whole journal no job may carry more than one
# terminal record.
dups=$(cat "$workdir"/jobs/*.journal |
	grep -e '"op":"done"' -e '"op":"fail"' |
	grep -o '"id":"[^"]*"' | sort | uniq -d)
[ -z "$dups" ] || fail "duplicate terminal journal records for: $dups"

echo "jobs-crash-smoke: graceful shutdown"
kill -TERM "$server_pid"
for _ in $(seq 1 100); do
	kill -0 "$server_pid" 2>/dev/null || break
	sleep 0.1
done
kill -0 "$server_pid" 2>/dev/null && fail "server still running 10s after SIGTERM"
wait "$server_pid" 2>/dev/null || true
server_pid=""

echo "jobs-crash-smoke: PASS (replayed=$replayed, done=$jdone/$NJOBS, history $hist_before -> $hist_after samples, no duplicate terminals)"
