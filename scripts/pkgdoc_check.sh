#!/bin/sh
# pkgdoc_check.sh — the godoc gate run by `make check`.
#
# Every library package (root + internal/*) must carry a canonical
# `// Package <name> ...` comment, and every main package (cmd/*,
# examples/*) must have a doc comment immediately preceding its package
# clause in at least one file. Fails listing the offenders.
set -eu
cd "$(dirname "$0")/.."

status=0
for dir in $(go list -f '{{.Dir}}' ./...); do
	name=$(go list -f '{{.Name}}' "$dir")
	if [ "$name" != "main" ]; then
		# Non-test files only: a package comment living in _test.go is
		# invisible to godoc, so it must not satisfy the gate.
		ok=0
		for f in "$dir"/*.go; do
			case "$f" in *_test.go) continue ;; esac
			if grep -q "^// Package $name " "$f"; then
				ok=1
				break
			fi
		done
		if [ "$ok" -eq 0 ]; then
			echo "pkgdoc-check: $dir lacks a '// Package $name ...' comment" >&2
			status=1
		fi
		continue
	fi
	ok=0
	for f in "$dir"/*.go; do
		case "$f" in *_test.go) continue ;; esac
		if awk '
			/^package / { if (prev ~ /^\/\//) found = 1; exit }
			{ prev = $0 }
			END { exit !found }
		' "$f"; then
			ok=1
			break
		fi
	done
	if [ "$ok" -eq 0 ]; then
		echo "pkgdoc-check: $dir lacks a doc comment on its package clause" >&2
		status=1
	fi
done
exit $status
