#!/bin/sh
# server_smoke.sh — end-to-end smoke of cmd/sppserve, run by the CI
# `server-smoke` job and `make server-smoke`:
#
#   1. build and start the server on a free port;
#   2. GET /healthz;
#   3. POST the same benchmark twice — the repeat must be served from
#      the canonical-function cache and be >=10x faster than the cold
#      run (the PR's acceptance bar; locally it is ~100-1000x);
#   4. POST a batch with an intra-batch duplicate — the duplicate must
#      hit the cache;
#   5. GET /statsz and check the cache-hit counters and run reports;
#   6. SIGTERM the server and check the graceful drain + final
#      spp-stats-run/v1 flush.
#
# Stdlib tools only: the JSON assertions use grep/sed on Go's
# field-ordered encoding.
set -eu
cd "$(dirname "$0")/.."

workdir=$(mktemp -d)
server_pid=""
cleanup() {
	[ -n "$server_pid" ] && kill "$server_pid" 2>/dev/null || true
	rm -rf "$workdir"
}
trap cleanup EXIT INT TERM

fail() {
	echo "server-smoke: FAIL: $*" >&2
	echo "--- server log:" >&2
	cat "$workdir/server.err" >&2 || true
	exit 1
}

# Extract the (first) value of a scalar JSON field from stdin.
jsonfield() {
	grep -o "\"$1\": *[^,}]*" | head -n1 | sed 's/^[^:]*: *//; s/"//g'
}

echo "server-smoke: building"
go build -o "$workdir/sppserve" ./cmd/sppserve

"$workdir/sppserve" -addr 127.0.0.1:0 -batch-workers 4 -stats "$workdir/final.json" \
	>"$workdir/server.out" 2>"$workdir/server.err" &
server_pid=$!

# Wait for the listen line (the server prints its resolved port).
addr=""
for _ in $(seq 1 50); do
	addr=$(sed -n 's/^sppserve: listening on //p' "$workdir/server.out")
	[ -n "$addr" ] && break
	kill -0 "$server_pid" 2>/dev/null || fail "server exited at startup"
	sleep 0.1
done
[ -n "$addr" ] || fail "server never reported its address"
echo "server-smoke: up at $addr"

curl -fsS "http://$addr/healthz" | grep -q '"status": *"ok"' || fail "healthz"

echo "server-smoke: cold request"
curl -fsS -d '{"bench":"adr4","output":0}' "http://$addr/v1/minimize" \
	>"$workdir/cold.json" || fail "cold minimize request"
grep -q '"cached": *false' "$workdir/cold.json" || fail "cold run claims cached"
cold_ns=$(jsonfield elapsed_ns <"$workdir/cold.json")
cold_lit=$(jsonfield literals <"$workdir/cold.json")
[ "$cold_lit" -gt 0 ] || fail "cold run returned no literals"

echo "server-smoke: warm request (cold was ${cold_ns}ns)"
curl -fsS -d '{"bench":"adr4","output":0}' "http://$addr/v1/minimize" \
	>"$workdir/warm.json" || fail "warm minimize request"
grep -q '"cached": *true' "$workdir/warm.json" || fail "repeat request missed the cache"
warm_ns=$(jsonfield elapsed_ns <"$workdir/warm.json")
warm_lit=$(jsonfield literals <"$workdir/warm.json")
[ "$warm_lit" = "$cold_lit" ] || fail "cached literals $warm_lit != cold $cold_lit"
[ "$((warm_ns * 10))" -le "$cold_ns" ] ||
	fail "cache hit not >=10x faster: cold ${cold_ns}ns vs warm ${warm_ns}ns"
echo "server-smoke: cache hit ${warm_ns}ns ($((cold_ns / warm_ns))x faster)"

echo "server-smoke: batch with intra-batch duplicate"
curl -fsS -d '{"requests":[{"bench":"life"},{"bench":"life"}]}' \
	"http://$addr/v1/minimize" >"$workdir/batch.json" || fail "batch request"
grep -q '"cached": *false' "$workdir/batch.json" || fail "batch: no cold item"
# Concurrent batch items: the duplicate is either coalesced onto the
# cold item's in-flight compute or served from the cache after it;
# both report cached.
grep -q '"cached": *true' "$workdir/batch.json" || fail "batch: duplicate recomputed"

echo "server-smoke: statsz"
curl -fsS "http://$addr/statsz" >"$workdir/statsz.json" || fail "statsz request"
hits=$(jsonfield cache_hits <"$workdir/statsz.json")
waiters=$(jsonfield coalesce_waiters <"$workdir/statsz.json")
misses=$(jsonfield cache_misses <"$workdir/statsz.json")
served=$(jsonfield served <"$workdir/statsz.json")
[ "$((hits + waiters))" -ge 2 ] || fail "statsz hits+waiters = $hits+$waiters, want >= 2"
[ "$((hits + waiters + misses))" = "$served" ] ||
	fail "statsz incoherent: served $served != hits $hits + misses $misses + waiters $waiters"
shards=$(jsonfield cache_shards <"$workdir/statsz.json")
[ "$shards" -ge 1 ] || fail "statsz cache_shards = $shards, want >= 1"
grep -q '"coalesce_detached"' "$workdir/statsz.json" || fail "statsz missing coalesce_detached"
grep -q '"schema": *"spp-stats-run/v1"' "$workdir/statsz.json" || fail "statsz run schema"
grep -q '"schema": *"spp-stats/v1"' "$workdir/statsz.json" || fail "statsz run reports"

echo "server-smoke: graceful shutdown"
kill -TERM "$server_pid"
for _ in $(seq 1 100); do
	kill -0 "$server_pid" 2>/dev/null || break
	sleep 0.1
done
if kill -0 "$server_pid" 2>/dev/null; then
	fail "server still running 10s after SIGTERM"
fi
wait "$server_pid" 2>/dev/null || true
server_pid=""
grep -q '"spp-stats-run/v1"' "$workdir/final.json" || fail "final stats flush missing"

echo "server-smoke: PASS"
