// Package spp is the public API of the SPP logic-minimization library,
// a reproduction of "Logic Minimization using Exclusive OR Gates"
// (V. Ciriani, DAC 2001).
//
// An SPP (Sum of Pseudoproducts) form is a three-level network: an OR of
// ANDs of EXOR factors, generalizing two-level Sum-of-Products. SPP
// forms average about half the literals of minimal SP forms on
// arithmetic-flavoured functions and never do worse. This package
// exposes:
//
//   - Function: a single-output Boolean function with don't-cares, built
//     from minterms, a predicate, a truth table, or an Espresso PLA;
//   - Minimize: exact SPP minimization (the paper's Algorithm 2 on
//     partition tries);
//   - MinimizeK: the incremental SPP_k heuristic (Algorithm 3), trading
//     literals for time via the descent parameter k;
//   - MinimizeSP: classical two-level minimization for comparison;
//   - MinimizeNaive: the quadratic Luccio–Pagli baseline the paper
//     improves on, kept for benchmarking.
//
// A minimal session:
//
//	f := spp.FromPredicate(4, func(p uint64) bool { return bits.OnesCount64(p)%2 == 1 })
//	res, err := spp.Minimize(f, nil)
//	// res.Form.String() == "(x0⊕x1⊕x2⊕x3)" — one pseudoproduct where
//	// an SP form needs eight 4-literal minterm products.
package spp

import (
	"context"
	"io"
	"strings"
	"time"

	"repro/internal/bdd"
	"repro/internal/bfunc"
	"repro/internal/core"
	"repro/internal/fprm"
	"repro/internal/sp"
	"repro/internal/stats"
)

// Function is a single-output, possibly incompletely specified Boolean
// function over B^n. Points are packed into uint64 with variable x_0 in
// the most significant of the n used bits.
type Function struct {
	f *bfunc.Func
}

// New builds a completely specified function from its ON-set minterms.
func New(n int, on []uint64) *Function {
	return &Function{f: bfunc.New(n, on)}
}

// NewWithDC builds a function from ON and don't-care minterm sets.
func NewWithDC(n int, on, dc []uint64) *Function {
	return &Function{f: bfunc.NewDC(n, on, dc)}
}

// FromPredicate builds a function by evaluating pred on all 2^n points.
func FromPredicate(n int, pred func(p uint64) bool) *Function {
	return &Function{f: bfunc.FromPredicate(n, pred)}
}

// FromTruthTable builds a function from a 2^n-entry truth table.
func FromTruthTable(n int, tt []bool) *Function {
	return &Function{f: bfunc.FromTruthTable(n, tt)}
}

// N returns the number of input variables.
func (f *Function) N() int { return f.f.N() }

// OnCount returns the size of the ON-set.
func (f *Function) OnCount() int { return f.f.OnCount() }

// IsOn reports whether point p is in the ON-set.
func (f *Function) IsOn(p uint64) bool { return f.f.IsOn(p) }

// IsSpecified reports whether point p is specified (ON or OFF, i.e.
// not a don't-care).
func (f *Function) IsSpecified(p uint64) bool { return !f.f.IsDC(p) }

// Design is a named multi-output function, e.g. a parsed PLA.
type Design struct {
	m *bfunc.Multi
}

// ParsePLA reads a multi-output design in Espresso PLA format.
func ParsePLA(r io.Reader, name string) (*Design, error) {
	m, err := bfunc.ParsePLA(r, name)
	if err != nil {
		return nil, err
	}
	return &Design{m: m}, nil
}

// Name returns the design name.
func (d *Design) Name() string { return d.m.Name }

// Inputs returns the number of input variables.
func (d *Design) Inputs() int { return d.m.Inputs }

// NOutputs returns the number of outputs.
func (d *Design) NOutputs() int { return d.m.NOutputs() }

// Output returns output i as a Function (the paper minimizes outputs
// separately).
func (d *Design) Output(i int) *Function { return &Function{f: d.m.Output(i)} }

// Options tune minimization. The zero value (or a nil pointer) selects
// literal-count cost, greedy covering and generous generation limits.
type Options struct {
	// Ctx, when non-nil, cancels the whole minimization: construction
	// and covering poll it at phase boundaries and inside their hot
	// loops, and the ctx error (context.Canceled or DeadlineExceeded)
	// is returned in place of ErrBudget. Unlike MaxDuration, which only
	// bounds EPPP construction, a context deadline bounds wall clock
	// across every phase — it is what serving layers should use.
	Ctx context.Context
	// MaxDuration bounds EPPP construction wall-clock time (0 = none).
	MaxDuration time.Duration
	// MaxCandidates caps the number of pseudoproducts generated
	// (0 = the library default of a few million).
	MaxCandidates int
	// FactorCost minimizes the number of EXOR factors instead of
	// literals.
	FactorCost bool
	// ExactCover replaces the greedy covering heuristic with budgeted
	// branch and bound; the literal counts become provable minima when
	// the search completes (Result.CoverOptimal).
	ExactCover bool
	// Workers sets the number of parallel workers for EPPP construction
	// and the heuristic phases: 0 means all CPUs, 1 (or negative) means
	// serial. Results are identical for every worker count.
	Workers int
	// CoverWorkers sets the number of parallel workers for the covering
	// phase (column construction and the exact branch and bound): 0
	// follows Workers, 1 (or negative) means serial. Results are
	// identical for every worker count.
	CoverWorkers int
	// MaxCoverNodes bounds the exact covering branch and bound (0 = the
	// solver default). Only meaningful with ExactCover.
	MaxCoverNodes int64
	// Stats, when non-nil, collects per-phase timings and counters for
	// the run (see package repro/internal/stats); nil costs nothing.
	Stats *stats.Recorder
}

func (o *Options) toCore() core.Options {
	if o == nil {
		return core.Options{}
	}
	opts := core.Options{
		Ctx:           o.Ctx,
		MaxDuration:   o.MaxDuration,
		MaxCandidates: o.MaxCandidates,
		CoverExact:    o.ExactCover,
		CoverMaxNodes: o.MaxCoverNodes,
		Workers:       o.Workers,
		CoverWorkers:  o.CoverWorkers,
		Stats:         o.Stats,
	}
	if o.FactorCost {
		opts.Cost = core.CostFactors
	}
	return opts
}

// ErrBudget reports that a limit in Options was hit before completion.
var ErrBudget = core.ErrBudget

// StatsRecorder collects per-phase wall times and pipeline counters
// during a minimization; see Options.Stats. The alias lets callers
// outside this module use the internal recorder type.
type StatsRecorder = stats.Recorder

// StatsReport is the machine-readable snapshot of a StatsRecorder.
type StatsReport = stats.Report

// NewStatsRecorder returns an empty recorder to pass via Options.Stats.
func NewStatsRecorder() *StatsRecorder { return stats.New() }

// NewLabeledStatsRecorder is NewStatsRecorder plus pprof goroutine
// labels: worker goroutines are tagged with their pipeline phase
// ("spp-phase") so CPU profiles split by phase.
func NewLabeledStatsRecorder() *StatsRecorder { return stats.NewLabeled() }

// Form is a minimized SPP expression.
type Form struct {
	form core.Form
}

// Literals returns the total literal count (the paper's #L).
func (f Form) Literals() int { return f.form.Literals() }

// NumTerms returns the number of pseudoproducts (the paper's #PP).
func (f Form) NumTerms() int { return f.form.NumTerms() }

// Eval evaluates the form on a packed point.
func (f Form) Eval(p uint64) bool { return f.form.Eval(p) }

// String renders the form, e.g. "x1·(x0⊕x2⊕x̄3) + x̄0·x2".
func (f Form) String() string { return f.form.String() }

// Verify checks the form against fn over all 2^n points.
func (f Form) Verify(fn *Function) error { return f.form.Verify(fn.f) }

// Result is a minimization outcome.
type Result struct {
	// Form is the selected SPP expression.
	Form Form
	// EPPPCount is the number of extended prime pseudoproducts
	// considered by the covering step.
	EPPPCount int
	// BuildTime and CoverTime split the runtime between EPPP
	// construction and covering.
	BuildTime, CoverTime time.Duration
	// CoverOptimal reports whether the covering phase proved the
	// selection minimum; otherwise the form is an upper bound (the
	// paper's Table 1 situation).
	CoverOptimal bool
}

func fromCore(r *core.Result) *Result {
	return &Result{
		Form:         Form{form: r.Form},
		EPPPCount:    r.Build.EPPP,
		BuildTime:    r.Build.BuildTime,
		CoverTime:    r.CoverTime,
		CoverOptimal: r.CoverOptimal,
	}
}

// Minimize computes a minimal SPP form with the paper's exact
// Algorithm 2 (partition-trie EPPP construction plus covering).
func Minimize(f *Function, opts *Options) (*Result, error) {
	r, err := core.MinimizeExact(f.f, opts.toCore())
	if err != nil {
		return nil, err
	}
	return fromCore(r), nil
}

// MinimizeK computes the SPP_k heuristic form (Algorithm 3); k ranges
// over [0, n−1], with k = n−1 equivalent to exact minimization and
// k = 0 the fast upper bound of the paper's Table 3.
func MinimizeK(f *Function, k int, opts *Options) (*Result, error) {
	r, err := core.Heuristic(f.f, k, opts.toCore())
	if err != nil {
		return nil, err
	}
	return fromCore(r), nil
}

// MinimizeNaive is Minimize with EPPP construction done by the
// quadratic pairwise baseline of Luccio–Pagli [5]. Same forms, far
// slower; exposed for the Table 2 comparison.
func MinimizeNaive(f *Function, opts *Options) (*Result, error) {
	r, err := core.MinimizeNaive(f.f, opts.toCore())
	if err != nil {
		return nil, err
	}
	return fromCore(r), nil
}

// WarmState is the reusable intermediate state of one warm
// minimization: the partition-trie level structure with per-entry point
// signatures and discard counts, plus the ON points covered by each
// candidate. Resume patches it under a small edit instead of
// recomputing; the snapshot itself is immutable, so one WarmState can
// serve concurrent Resume calls.
type WarmState struct {
	ws *core.WarmState
}

// N returns the input arity of the snapshotted function.
func (w *WarmState) N() int { return w.ws.N() }

// Bytes estimates the retained footprint of the snapshot — what a
// size-aware cache should charge for keeping it.
func (w *WarmState) Bytes() int64 { return w.ws.Bytes() }

// Delta is an edit script against a warm state's function: point moves
// between the ON, DC and OFF sets. Edits are validated strictly (adding
// an already-ON point or removing an absent one is an error); the legal
// compound moves are ON→DC (RemoveOn + AddDC) and DC→ON (AddOn alone).
type Delta struct {
	// AddOn turns OFF or DC points ON.
	AddOn []uint64
	// RemoveOn turns ON points OFF (or DC when also listed in AddDC).
	RemoveOn []uint64
	// AddDC turns OFF points (including ones being removed from ON)
	// into don't-cares.
	AddDC []uint64
	// RemoveDC turns DC points OFF.
	RemoveDC []uint64
}

func (d Delta) toCore() core.Delta {
	return core.Delta{AddOn: d.AddOn, RemoveOn: d.RemoveOn, AddDC: d.AddDC, RemoveDC: d.RemoveDC}
}

// Apply returns the function the delta edits the snapshot into, without
// resuming.
func (w *WarmState) Apply(d Delta) (*Function, error) {
	f, err := w.ws.Apply(d.toCore())
	if err != nil {
		return nil, err
	}
	return &Function{f: f}, nil
}

// Churn returns the number of points the delta moves into or out of the
// care set (ON ∪ DC) — the "dirtiness" serving layers compare against a
// threshold when choosing warm resume vs cold rerun.
func (w *WarmState) Churn(d Delta) (int, error) {
	return w.ws.Churn(d.toCore())
}

// MinimizeWarm is Minimize capturing a WarmState for later Resume
// calls. It emits covering candidates in a canonical order (independent
// of generation history), so the returned form can differ textually
// from Minimize's where the covering heuristic broke a tie by candidate
// order — the literal cost is the same, and all warm results
// (MinimizeWarm and Resume alike) are mutually byte-identical for equal
// functions. EPPP construction runs serially while capturing;
// Options.CoverWorkers still parallelizes covering.
func MinimizeWarm(f *Function, opts *Options) (*Result, *WarmState, error) {
	r, ws, err := core.MinimizeExactWarm(f.f, opts.toCore())
	if err != nil {
		return nil, nil, err
	}
	return fromCore(r), &WarmState{ws: ws}, nil
}

// Resume minimizes the edited function by patching the warm state: only
// structure groups whose point signatures intersect the changed
// minterms are re-unioned, and the covering instance is patched rather
// than rebuilt. The result — form, candidate set and order — is
// byte-identical to MinimizeWarm on the edited function, at a fraction
// of the cost when the edit is small. Returns a fresh WarmState for the
// edited function; the input state is untouched and remains valid.
//
// Options must request the same cost model (FactorCost) the snapshot
// was built under; Ctx, budgets and worker counts may differ freely.
func Resume(w *WarmState, d Delta, opts *Options) (*Result, *WarmState, error) {
	r, nws, err := core.ResumeExact(w.ws, d.toCore(), opts.toCore())
	if err != nil {
		return nil, nil, err
	}
	return fromCore(r), &WarmState{ws: nws}, nil
}

// SPResult is a two-level minimization outcome.
type SPResult struct {
	// Literals and NumTerms are the paper's #L and #P.
	Literals int
	NumTerms int
	// NumPrimes is the paper's #PI.
	NumPrimes int
	// Expr renders the chosen sum of products.
	Expr string
	// Eval evaluates the form.
	Eval func(p uint64) bool
}

// MinimizeSP computes a minimal (greedy-covered) two-level SP form, the
// paper's comparison baseline.
func MinimizeSP(f *Function, opts *Options) *SPResult {
	var spOpts sp.Options
	if opts != nil {
		spOpts.CoverExact = opts.ExactCover
	}
	res := sp.Minimize(f.f, spOpts)
	form := res.Form
	expr := make([]string, len(form.Cubes))
	for i, c := range form.Cubes {
		expr[i] = c.Format(f.f.N())
	}
	out := &SPResult{
		Literals:  form.Literals(),
		NumTerms:  form.NumTerms(),
		NumPrimes: res.NumPrimes,
		Eval:      form.Eval,
	}
	if len(expr) == 0 {
		out.Expr = "0"
	} else {
		out.Expr = strings.Join(expr, " + ")
	}
	return out
}

// ParseForm parses the textual SPP syntax produced by Form.String (or
// its ASCII equivalent: * for AND, ^ for EXOR, ! or ~ for complement)
// into a Form over B^n, canonicalizing every pseudoproduct. Products
// that are constant 0 (inconsistent factor systems) are rejected.
func ParseForm(n int, src string) (Form, error) {
	form, err := core.ParseForm(n, src)
	if err != nil {
		return Form{}, err
	}
	return Form{form: form}, nil
}

// Simplify returns an equivalent form with pseudoproducts that are
// redundant for fn removed (most expensive first). Minimizer output is
// already irredundant; this is for hand-written or parsed forms.
func (f Form) Simplify(fn *Function) Form {
	return Form{form: f.form.Simplify(fn.f)}
}

// RMResult is a minimized fixed-polarity Reed–Muller (AND-EXOR) form,
// the classical EXOR-based normal form the paper's conclusions propose
// comparing SPP against.
type RMResult struct {
	// Literals is the total literal count of the best-polarity form.
	Literals int
	// NumTerms is the number of EXOR-ed products.
	NumTerms int
	// Polarity has a bit set for each complemented variable.
	Polarity uint64
	// Exhaustive reports whether all polarities were tried (n ≤ 12).
	Exhaustive bool
	// Expr renders the form.
	Expr string
	// Eval evaluates the form.
	Eval func(p uint64) bool
}

// MinimizeRM computes a minimum-literal fixed-polarity Reed–Muller form
// of a completely specified function: exhaustive over all 2^n
// polarities for n ≤ 12, greedy polarity descent beyond.
func MinimizeRM(f *Function) *RMResult {
	res := fprm.Minimize(f.f)
	return &RMResult{
		Literals:   res.Literals,
		NumTerms:   res.NumTerms(),
		Polarity:   res.Polarity,
		Exhaustive: res.Exhaustive,
		Expr:       res.Format(f.N()),
		Eval:       func(p uint64) bool { return res.Eval(p) },
	}
}

// HasDC reports whether the function has any don't-care points.
func (f *Function) HasDC() bool { return len(f.f.DC()) > 0 }

// BDD builds the function's canonical decision diagram in the given
// manager (completely specified functions only); used by the symbolic
// equivalence paths of the tools.
func (f *Function) BDD(m *bdd.Manager) bdd.Node { return m.FromFunc(f.f) }
