package spp_test

import (
	"context"
	"errors"
	"math/bits"
	"strings"
	"testing"
	"time"

	"repro"
	"repro/internal/bdd"
)

func parity(n int) *spp.Function {
	return spp.FromPredicate(n, func(p uint64) bool {
		return bits.OnesCount64(p)%2 == 1
	})
}

func TestMinimizeParity(t *testing.T) {
	f := parity(4)
	res, err := spp.Minimize(f, &spp.Options{ExactCover: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Form.Literals() != 4 || res.Form.NumTerms() != 1 {
		t.Fatalf("parity form: %v", res.Form)
	}
	if res.Form.String() != "(x0⊕x1⊕x2⊕x3)" {
		t.Fatalf("parity renders %q", res.Form.String())
	}
	if !res.CoverOptimal {
		t.Fatal("exact cover should be optimal on parity")
	}
	if err := res.Form.Verify(f); err != nil {
		t.Fatal(err)
	}
}

func TestMinimizeKMatchesExactAtTop(t *testing.T) {
	f := spp.New(4, []uint64{1, 2, 4, 7, 8, 11, 13, 14, 5})
	exact, err := spp.Minimize(f, &spp.Options{ExactCover: true})
	if err != nil {
		t.Fatal(err)
	}
	top, err := spp.MinimizeK(f, 3, &spp.Options{ExactCover: true})
	if err != nil {
		t.Fatal(err)
	}
	if exact.Form.Literals() != top.Form.Literals() {
		t.Fatalf("SPP_{n-1}=%d, exact=%d", top.Form.Literals(), exact.Form.Literals())
	}
}

func TestMinimizeNaiveAgrees(t *testing.T) {
	f := spp.New(4, []uint64{0, 3, 5, 6, 9, 10, 12, 15})
	a, err := spp.Minimize(f, &spp.Options{ExactCover: true})
	if err != nil {
		t.Fatal(err)
	}
	b, err := spp.MinimizeNaive(f, &spp.Options{ExactCover: true})
	if err != nil {
		t.Fatal(err)
	}
	if a.Form.Literals() != b.Form.Literals() {
		t.Fatalf("naive %d != exact %d", b.Form.Literals(), a.Form.Literals())
	}
}

func TestMinimizeSPFacade(t *testing.T) {
	f := parity(3)
	res := spp.MinimizeSP(f, nil)
	if res.Literals != 12 || res.NumTerms != 4 {
		t.Fatalf("SP parity-3: %d literals, %d terms", res.Literals, res.NumTerms)
	}
	for p := uint64(0); p < 8; p++ {
		if res.Eval(p) != f.IsOn(p) {
			t.Fatalf("SP form wrong at %03b", p)
		}
	}
	if res.Expr == "" || res.Expr == "0" {
		t.Fatalf("SP expr = %q", res.Expr)
	}
}

func TestBudgetSurfacesErrBudget(t *testing.T) {
	f := parity(6)
	_, err := spp.Minimize(f, &spp.Options{MaxCandidates: 3})
	if err != spp.ErrBudget {
		t.Fatalf("got %v, want ErrBudget", err)
	}
	_, err = spp.Minimize(parity(10), &spp.Options{MaxDuration: time.Nanosecond, MaxCandidates: 100_000_000})
	if err != spp.ErrBudget {
		t.Fatalf("got %v, want ErrBudget (time)", err)
	}
}

func TestParsePLAFacade(t *testing.T) {
	src := ".i 2\n.o 2\n01 10\n10 11\n11 0-\n.e\n"
	d, err := spp.ParsePLA(strings.NewReader(src), "demo")
	if err != nil {
		t.Fatal(err)
	}
	if d.Name() != "demo" || d.Inputs() != 2 || d.NOutputs() != 2 {
		t.Fatalf("design meta wrong: %s %d/%d", d.Name(), d.Inputs(), d.NOutputs())
	}
	f := d.Output(0)
	res, err := spp.Minimize(f, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Form.Verify(f); err != nil {
		t.Fatal(err)
	}
	// Output 0 is x0⊕x1 = 2 pseudoproducts of 2 literals... or the
	// single factor (x0⊕x1): 2 literals.
	if res.Form.Literals() != 2 {
		t.Fatalf("xor output: %v", res.Form)
	}
}

func TestFunctionConstructors(t *testing.T) {
	tt := spp.FromTruthTable(2, []bool{false, true, true, false})
	if tt.N() != 2 || tt.OnCount() != 2 || !tt.IsOn(1) {
		t.Fatal("FromTruthTable wrong")
	}
	dc := spp.NewWithDC(3, []uint64{1}, []uint64{3, 5})
	res, err := spp.Minimize(dc, &spp.Options{ExactCover: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Form.Verify(dc); err != nil {
		t.Fatal(err)
	}
	// With DC {3,5}, ON {1} = 001; pseudoproducts may absorb DC points:
	// {1,3} = x̄0·x2 (2 literals) or {1,5}=(x̄1·x2)... either way ≤ 2.
	if res.Form.Literals() > 2 {
		t.Fatalf("DC not exploited: %v", res.Form)
	}
}

func TestFactorCostOption(t *testing.T) {
	f := parity(4)
	res, err := spp.Minimize(f, &spp.Options{FactorCost: true, ExactCover: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Form.NumTerms() != 1 {
		t.Fatalf("factor-cost parity: %v", res.Form)
	}
}

func TestFunctionBDDAndHasDC(t *testing.T) {
	f := parity(5)
	if f.HasDC() {
		t.Fatal("parity has no DCs")
	}
	m := bdd.New(5)
	node := f.BDD(m)
	for p := uint64(0); p < 32; p++ {
		if m.Eval(node, p) != f.IsOn(p) {
			t.Fatalf("BDD disagrees at %b", p)
		}
	}
	dc := spp.NewWithDC(3, []uint64{1}, []uint64{2})
	if !dc.HasDC() {
		t.Fatal("HasDC missed the DC set")
	}
}

func TestOptionsCtxCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := spp.Minimize(parity(8), &spp.Options{Ctx: ctx})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	res, err := spp.Minimize(parity(4), &spp.Options{Ctx: context.Background()})
	if err != nil {
		t.Fatal(err)
	}
	if res.Form.String() != "(x0⊕x1⊕x2⊕x3)" {
		t.Fatalf("live ctx changed the result: %v", res.Form)
	}
}
