package spp_test

import (
	"testing"

	"repro"
)

func TestWarmResumeRoundTrip(t *testing.T) {
	f := spp.NewWithDC(5, []uint64{1, 2, 3, 8, 9, 17, 24}, []uint64{30})
	res, ws, err := spp.MinimizeWarm(f, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Form.Verify(f); err != nil {
		t.Fatalf("warm form invalid: %v", err)
	}
	if ws.N() != 5 || ws.Bytes() <= 0 {
		t.Fatalf("warm state: N=%d Bytes=%d", ws.N(), ws.Bytes())
	}

	d := spp.Delta{AddOn: []uint64{5, 30}, RemoveOn: []uint64{24}, AddDC: []uint64{24}}
	if churn, err := ws.Churn(d); err != nil || churn != 1 {
		// Point 5 enters care; 30 (DC→ON) and 24 (ON→DC) stay inside it.
		t.Fatalf("churn = %d, %v; want 1", churn, err)
	}
	edited, err := ws.Apply(d)
	if err != nil {
		t.Fatal(err)
	}

	warm, nws, err := spp.Resume(ws, d, nil)
	if err != nil {
		t.Fatal(err)
	}
	cold, _, err := spp.MinimizeWarm(edited, nil)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Form.String() != cold.Form.String() {
		t.Fatalf("resume not byte-identical to cold warm run:\nwarm %s\ncold %s", warm.Form, cold.Form)
	}
	if err := warm.Form.Verify(edited); err != nil {
		t.Fatal(err)
	}

	// Chain a second edit from the resumed state.
	warm2, _, err := spp.Resume(nws, spp.Delta{RemoveOn: []uint64{5}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	edited2, err := nws.Apply(spp.Delta{RemoveOn: []uint64{5}})
	if err != nil {
		t.Fatal(err)
	}
	if err := warm2.Form.Verify(edited2); err != nil {
		t.Fatal(err)
	}
}

func TestWarmResumeValidation(t *testing.T) {
	f := spp.New(4, []uint64{1, 2})
	_, ws, err := spp.MinimizeWarm(f, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := spp.Resume(ws, spp.Delta{AddOn: []uint64{1}}, nil); err == nil {
		t.Fatal("adding an already-ON point must fail")
	}
	if _, _, err := spp.Resume(ws, spp.Delta{AddOn: []uint64{3}}, &spp.Options{FactorCost: true}); err == nil {
		t.Fatal("cost-model mismatch must fail")
	}
}
